#include "src/flowkv/aar_store.h"

#include <algorithm>

#include "src/common/checkpoint.h"
#include "src/common/clock.h"
#include "src/common/coding.h"
#include "src/common/env.h"
#include "src/common/file.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace flowkv {

AarStore::AarStore(std::string dir, const FlowKvOptions& options)
    : dir_(std::move(dir)), options_(options) {}

AarStore::~AarStore() = default;

namespace {

// A crash can leave a torn record at an AAR log's tail (records are
// length-prefixed, not checksummed). Scan to the last complete record and
// truncate the debris so reopen never poisons ReadPass.
Status RepairTornTail(const std::string& path) {
  std::unique_ptr<SequentialFile> file;
  FLOWKV_RETURN_IF_ERROR(SequentialFile::Open(path, &file));
  std::string carry;
  std::string scratch;
  scratch.resize(256 * 1024);
  uint64_t valid_bytes = 0;
  uint64_t read_bytes = 0;
  while (true) {
    Slice got;
    FLOWKV_RETURN_IF_ERROR(file->Read(scratch.size(), &got, scratch.data()));
    if (got.empty()) {
      break;
    }
    read_bytes += got.size();
    carry.append(got.data(), got.size());
    Slice input(carry);
    size_t consumed = 0;
    while (true) {
      Slice probe = input;
      Slice key, value;
      if (!GetLengthPrefixed(&probe, &key) || !GetLengthPrefixed(&probe, &value)) {
        break;
      }
      consumed += input.size() - probe.size();
      input = probe;
    }
    valid_bytes += consumed;
    carry.erase(0, consumed);
  }
  file.reset();
  if (!carry.empty()) {
    FLOWKV_LOG(kWarn) << "aar: truncating torn tail of " << path << " from " << read_bytes
                      << " to " << valid_bytes << " bytes";
    return TruncateFile(path, valid_bytes);
  }
  return Status::Ok();
}

}  // namespace

Status AarStore::Open(const std::string& dir, const FlowKvOptions& options,
                      std::unique_ptr<AarStore>* out) {
  FLOWKV_RETURN_IF_ERROR(CreateDirs(dir));
  std::vector<std::string> names;
  FLOWKV_RETURN_IF_ERROR(ListDir(dir, &names));
  for (const auto& name : names) {
    if (name.rfind("aar_", 0) == 0) {
      FLOWKV_RETURN_IF_ERROR(RepairTornTail(JoinPath(dir, name)));
    }
  }
  out->reset(new AarStore(dir, options));
  return Status::Ok();
}

std::string AarStore::LogFileName(const Window& w) const {
  return JoinPath(dir_, "aar_" + std::to_string(w.start) + "_" + std::to_string(w.end) + ".log");
}

Status AarStore::Append(const Slice& key, const Slice& value, const Window& w) {
  ScopedTimer t(&stats_.write_nanos);
  ++stats_.writes;
  auto& bucket = buffer_[w];
  bucket.emplace_back(key.ToString(), value.ToString());
  buffered_bytes_ += key.size() + value.size() + 32;
  if (buffered_bytes_ >= options_.write_buffer_bytes) {
    return FlushBuffer();
  }
  return Status::Ok();
}

Status AarStore::FlushBuffer() {
  obs::TraceSpan span("flush", "store");
  span.AddArg("bytes", static_cast<int64_t>(buffered_bytes_));
  ++stats_.flushes;
  std::string encoded;
  for (auto& [window, bucket] : buffer_) {
    if (bucket.empty()) {
      continue;
    }
    auto it = writers_.find(window);
    if (it == writers_.end()) {
      std::unique_ptr<AppendFile> file;
      FLOWKV_RETURN_IF_ERROR(
          AppendFile::Open(LogFileName(window), /*reopen=*/true, &file, &stats_.io));
      it = writers_.emplace(window, std::move(file)).first;
    }
    encoded.clear();
    for (const auto& [key, value] : bucket) {
      PutLengthPrefixed(&encoded, key);
      PutLengthPrefixed(&encoded, value);
    }
    FLOWKV_RETURN_IF_ERROR(it->second->Append(encoded));
    if (options_.sync_on_flush) {
      FLOWKV_RETURN_IF_ERROR(it->second->Sync());
    } else {
      FLOWKV_RETURN_IF_ERROR(it->second->Flush());
    }
    bucket.clear();
    bucket.shrink_to_fit();
  }
  buffer_.clear();
  buffered_bytes_ = 0;
  return Status::Ok();
}

Status AarStore::StartRead(const Window& w, ReadCursor* cursor) {
  // Seal the window's log: flush any buffered tuples for it, close the writer.
  auto buffer_it = buffer_.find(w);
  if (buffer_it != buffer_.end() && !buffer_it->second.empty()) {
    // Cheapest path: spill just this window's bucket so the read has one
    // source of truth (the log file).
    auto writer_it = writers_.find(w);
    if (writer_it == writers_.end()) {
      std::unique_ptr<AppendFile> file;
      FLOWKV_RETURN_IF_ERROR(
          AppendFile::Open(LogFileName(w), /*reopen=*/true, &file, &stats_.io));
      writer_it = writers_.emplace(w, std::move(file)).first;
    }
    std::string encoded;
    for (const auto& [key, value] : buffer_it->second) {
      PutLengthPrefixed(&encoded, key);
      PutLengthPrefixed(&encoded, value);
      buffered_bytes_ -= std::min<uint64_t>(buffered_bytes_, key.size() + value.size() + 32);
    }
    FLOWKV_RETURN_IF_ERROR(writer_it->second->Append(encoded));
    buffer_.erase(buffer_it);
  }
  auto writer_it = writers_.find(w);
  if (writer_it != writers_.end()) {
    FLOWKV_RETURN_IF_ERROR(writer_it->second->Close());
    writers_.erase(writer_it);
  }

  cursor->file_exists = FileExists(LogFileName(w));
  cursor->file_bytes = 0;
  if (cursor->file_exists) {
    FLOWKV_RETURN_IF_ERROR(GetFileSize(LogFileName(w), &cursor->file_bytes));
  }
  const uint64_t budget = std::max<uint64_t>(options_.read_chunk_bytes, 64 * 1024);
  int passes = static_cast<int>((cursor->file_bytes + budget - 1) / budget);
  cursor->total_passes =
      std::clamp(passes, cursor->file_exists ? 1 : 0, options_.max_aar_passes);
  cursor->next_pass = 0;
  return Status::Ok();
}

Status AarStore::ReadPass(const Window& w, const ReadCursor& cursor,
                          std::vector<WindowChunkEntry>* chunk) {
  obs::TraceSpan span("aar_read_pass", "store");
  span.AddArg("pass", cursor.next_pass);
  span.AddArg("total_passes", cursor.total_passes);
  // Stream the log once, keeping only keys of this pass's hash group, fully
  // grouped (key-complete partition).
  std::unique_ptr<SequentialFile> file;
  FLOWKV_RETURN_IF_ERROR(SequentialFile::Open(LogFileName(w), &file, &stats_.io));

  const uint32_t pass = static_cast<uint32_t>(cursor.next_pass);
  const uint32_t total = static_cast<uint32_t>(cursor.total_passes);

  std::unordered_map<std::string, size_t> group_index;
  std::string carry;  // partial record spanning read boundaries
  std::string scratch;
  scratch.resize(256 * 1024);
  while (true) {
    Slice got;
    FLOWKV_RETURN_IF_ERROR(file->Read(scratch.size(), &got, scratch.data()));
    if (got.empty()) {
      break;
    }
    carry.append(got.data(), got.size());
    Slice input(carry);
    size_t consumed_through = 0;
    while (true) {
      Slice probe = input;
      Slice key, value;
      if (!GetLengthPrefixed(&probe, &key) || !GetLengthPrefixed(&probe, &value)) {
        break;  // need more bytes
      }
      if (Hash64(key) % total == pass) {
        auto [it, inserted] = group_index.try_emplace(key.ToString(), chunk->size());
        if (inserted) {
          chunk->push_back(WindowChunkEntry{key.ToString(), {}});
        }
        (*chunk)[it->second].values.push_back(value.ToString());
      }
      consumed_through += input.size() - probe.size();
      input = probe;
    }
    carry.erase(0, consumed_through);
  }
  if (!carry.empty()) {
    return Status::Corruption("trailing partial record in " + LogFileName(w));
  }
  for (const auto& entry : *chunk) {
    stats_.tuples_read_from_disk += static_cast<int64_t>(entry.values.size());
    stats_.tuples_consumed += static_cast<int64_t>(entry.values.size());
  }
  return Status::Ok();
}

Status AarStore::FinishRead(const Window& w) {
  read_cursors_.erase(w);
  const std::string path = LogFileName(w);
  if (FileExists(path)) {
    // Fetch-and-remove: the log is dead the moment it has been read. This is
    // the whole compaction story for AAR (there is none).
    FLOWKV_RETURN_IF_ERROR(RemoveFile(path));
  }
  return Status::Ok();
}

Status AarStore::DropWindow(const Window& w) {
  auto buffer_it = buffer_.find(w);
  if (buffer_it != buffer_.end()) {
    for (const auto& [key, value] : buffer_it->second) {
      buffered_bytes_ -= std::min<uint64_t>(buffered_bytes_, key.size() + value.size() + 32);
    }
    buffer_.erase(buffer_it);
  }
  auto writer_it = writers_.find(w);
  if (writer_it != writers_.end()) {
    FLOWKV_RETURN_IF_ERROR(writer_it->second->Close());
    writers_.erase(writer_it);
  }
  read_cursors_.erase(w);
  const std::string path = LogFileName(w);
  if (FileExists(path)) {
    FLOWKV_RETURN_IF_ERROR(RemoveFile(path));
  }
  return Status::Ok();
}

Status AarStore::CheckpointTo(const std::string& checkpoint_dir) {
  CheckpointWriter writer(checkpoint_dir);
  FLOWKV_RETURN_IF_ERROR(writer.Init());
  FLOWKV_RETURN_IF_ERROR(FlushBuffer());
  for (auto& [window, log] : writers_) {
    FLOWKV_RETURN_IF_ERROR(log->Flush());
  }
  std::vector<std::string> names;
  FLOWKV_RETURN_IF_ERROR(ListDir(dir_, &names));
  for (const auto& name : names) {
    if (name.rfind("aar_", 0) == 0) {
      FLOWKV_RETURN_IF_ERROR(writer.AddFile(JoinPath(dir_, name), name));
    }
  }
  return writer.Commit();
}

Status AarStore::RestoreFrom(const std::string& checkpoint_dir, const std::string& dir,
                             const FlowKvOptions& options, std::unique_ptr<AarStore>* out) {
  CheckpointReader reader;
  FLOWKV_RETURN_IF_ERROR(CheckpointReader::Open(checkpoint_dir, &reader));
  FLOWKV_RETURN_IF_ERROR(CreateDirs(dir));
  for (const auto& name : reader.Names()) {
    if (name.rfind("aar_", 0) == 0) {
      FLOWKV_RETURN_IF_ERROR(reader.CopyOut(name, JoinPath(dir, name)));
    }
  }
  return Open(dir, options, out);
}

Status AarStore::GetWindowChunk(const Window& w, std::vector<WindowChunkEntry>* chunk,
                                bool* done) {
  ScopedTimer t(&stats_.read_nanos);
  ++stats_.reads;
  chunk->clear();
  *done = false;

  auto cursor_it = read_cursors_.find(w);
  if (cursor_it == read_cursors_.end()) {
    ReadCursor cursor;
    FLOWKV_RETURN_IF_ERROR(StartRead(w, &cursor));
    cursor_it = read_cursors_.emplace(w, cursor).first;
  }
  ReadCursor& cursor = cursor_it->second;
  // Skip empty hash groups so every call either returns data or finishes.
  while (chunk->empty()) {
    if (cursor.next_pass >= cursor.total_passes) {
      *done = true;
      return FinishRead(w);
    }
    FLOWKV_RETURN_IF_ERROR(ReadPass(w, cursor, chunk));
    ++cursor.next_pass;
  }
  return Status::Ok();
}

}  // namespace flowkv
