// Append & Unaligned Read store (paper §4.2). Windows of different keys
// trigger at different, data-dependent times, so the store:
//
//  - hashes the write buffer by (key, initial window boundary),
//  - keeps one *global* data log plus an append-only *index log* on disk
//    (per-window files would explode in number); an index entry records
//    (key, window, offset, length, count, max_timestamp) for each flushed
//    segment — many tuples amortize into one entry via the write buffer,
//  - maintains an in-memory Stat table of estimated trigger times (ETTs),
//    updated on every Append from the tuple timestamp and the window
//    function's predictor,
//  - on a prefetch-buffer miss, performs a *predictive batch read*: one
//    sequential scan of the index log selects the N live (key, window)
//    entries closest to triggering (N = read_batch_ratio x live entries) and
//    loads their segments into the prefetch buffer,
//  - evicts prefetched state whose ETT proved wrong (a new tuple arrived,
//    e.g. a session extension) — those tuples are re-read later, which is
//    the 1/hit-ratio read amplification of Eq. 1,
//  - integrates compaction with the same index scan: when space
//    amplification exceeds the MSA threshold, live segments move to fresh
//    logs with zero-copy byte transfer and dead ones vanish.
#ifndef SRC_FLOWKV_AUR_STORE_H_
#define SRC_FLOWKV_AUR_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/file.h"
#include "src/common/slice.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/flowkv/ett.h"
#include "src/flowkv/flowkv_options.h"
#include "src/obs/metrics.h"
#include "src/spe/window.h"

namespace flowkv {

class AurStore {
 public:
  // The predictor encodes the window function's trigger semantics.
  static Status Open(const std::string& dir, const FlowKvOptions& options,
                     std::unique_ptr<EttPredictor> predictor, std::unique_ptr<AurStore>* out);

  ~AurStore();

  AurStore(const AurStore&) = delete;
  AurStore& operator=(const AurStore&) = delete;

  // Appends the tuple under (key, w); `timestamp` updates the window's ETT.
  Status Append(const Slice& key, const Slice& value, const Window& w, int64_t timestamp);

  // Fetch-and-remove of the full value list of (key, w).
  // NotFound when the entry has no state.
  Status Get(const Slice& key, const Window& w, std::vector<std::string>* values);

  // Moves the state of (key, src) windows into (key, dst), preserving
  // per-tuple timestamps (session merges).
  Status MergeWindows(const Slice& key, const std::vector<Window>& sources, const Window& dst);

  // Forces a compaction regardless of the MSA trigger (testing).
  Status Compact();

  // Snapshots the store (buffer flushed, dead segments compacted away, logs
  // copied, ETT/stat metadata serialized) into `checkpoint_dir` (paper §8).
  Status CheckpointTo(const std::string& checkpoint_dir);

  // Opens a store at `dir` seeded from a checkpoint.
  static Status RestoreFrom(const std::string& checkpoint_dir, const std::string& dir,
                            const FlowKvOptions& options,
                            std::unique_ptr<EttPredictor> predictor,
                            std::unique_ptr<AurStore>* out);

  uint64_t DataLogBytes() const;
  uint64_t DeadBytes() const { return dead_bytes_; }
  double SpaceAmplification() const;
  size_t PrefetchBufferEntries() const { return prefetch_.size(); }
  // Live (key, window) entries with disk-resident segments.
  uint64_t LiveDiskEntries() const { return live_disk_entries_; }
  const StoreStats& stats() const { return stats_; }
  StoreStats* mutable_stats() { return &stats_; }

 private:
  struct BufferedEntry {
    std::vector<std::pair<std::string, int64_t>> values;  // (value, timestamp)
    uint64_t bytes = 0;
  };

  struct PrefetchedEntry {
    std::vector<std::pair<std::string, int64_t>> values;
    // Generation-tagged offsets of the data-log segments this entry was read
    // from; marked dead when the entry is consumed.
    std::vector<uint64_t> segment_tags;
  };

  AurStore(std::string dir, const FlowKvOptions& options,
           std::unique_ptr<EttPredictor> predictor);

  Status OpenLogs(bool reopen = false);
  std::string DataLogName(uint64_t generation) const;
  std::string IndexLogName(uint64_t generation) const;

  static std::string StateKey(const Slice& key, const Window& w);
  static void SplitStateKey(const Slice& state_key, std::string* key, Window* w);

  // Flushes every write-buffer bucket: segments to the data log, one index
  // entry per bucket to the index log.
  Status FlushBuffer();

  // One parsed index-log entry.
  struct IndexEntry {
    std::string state_key;  // key + window encoding
    uint64_t offset;
    uint64_t length;
    uint64_t count;
    int64_t max_timestamp;
  };

  // Sequentially scans the index log, invoking fn per entry.
  Status ScanIndexLog(const std::string& path,
                      const std::function<Status(const IndexEntry&)>& fn) const;

  // The combined predictive-batch-read + integrated-compaction index scan,
  // triggered by a prefetch miss on `requested`.
  Status PredictiveBatchRead(const std::string& requested);

  // Loads the given segments into the prefetch buffer.
  Status LoadSegments(const std::unordered_map<std::string, std::vector<IndexEntry>>& segments);

  // Rewrites live segments into generation+1 logs (zero-copy) and unlinks the
  // old generation. `live` maps state keys to their segments (old offsets).
  Status CompactWith(std::unordered_map<std::string, std::vector<IndexEntry>> live);

  // Re-tags prefetch-buffer entries after a compaction moved their segments.
  void RefreshPrefetchTags(const std::unordered_map<std::string, std::vector<IndexEntry>>& live);

  // Drains all state for `state_key` from buffer + prefetch + disk into
  // `values`, marking disk segments dead. Core of Get and MergeWindows.
  Status Collect(const std::string& state_key,
                 std::vector<std::pair<std::string, int64_t>>* values, bool use_prefetch);

  std::string dir_;
  FlowKvOptions options_;
  std::unique_ptr<EttPredictor> predictor_;

  // (key, initial window)-hashed write buffer.
  std::unordered_map<std::string, BufferedEntry> buffer_;
  uint64_t buffered_bytes_ = 0;

  // Stat table: state key -> {ETT, max timestamp seen} (paper Fig. 7).
  struct Stat {
    int64_t ett = 0;
    int64_t max_timestamp = INT64_MIN;
  };
  std::unordered_map<std::string, Stat> stat_;

  // Prefetch buffer populated by predictive batch reads.
  std::unordered_map<std::string, PrefetchedEntry> prefetch_;

  // Dead data-log segments (fetched-and-removed or moved by MergeWindows),
  // identified by generation-tagged offset; their index entries are garbage
  // until compaction. Per-segment (not per-(key,window)) so that a window
  // that is re-created after consumption is never shadowed by its past.
  std::unordered_set<uint64_t> dead_segments_;

  uint64_t SegmentTag(uint64_t offset) const { return (generation_ << 48) | offset; }

  // Live on-disk bytes per state key (for space-amplification accounting).
  std::unordered_map<std::string, uint64_t> disk_bytes_;

  // Event-time clock: the largest tuple timestamp appended so far; used to
  // measure actual trigger delays for adaptive predictors.
  int64_t clock_ = INT64_MIN;

  std::unique_ptr<AppendFile> data_log_;
  std::unique_ptr<AppendFile> index_log_;
  uint64_t generation_ = 0;
  uint64_t dead_bytes_ = 0;
  uint64_t live_disk_entries_ = 0;  // live (key,window) entries with disk data

  StoreStats stats_;
  // Samples stats_ live under the registering thread's (worker, partition)
  // labels; must be declared after stats_ (destroyed before it).
  obs::ScopedStatsRegistration stats_registration_{&stats_, "aur"};
};

}  // namespace flowkv

#endif  // SRC_FLOWKV_AUR_STORE_H_
