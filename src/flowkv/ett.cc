#include "src/flowkv/ett.h"

namespace flowkv {

std::unique_ptr<EttPredictor> MakeEttPredictor(const OperatorStateSpec& spec) {
  switch (spec.window_kind) {
    case WindowKind::kTumbling:
    case WindowKind::kSliding:
    case WindowKind::kGlobal:
      return std::make_unique<AlignedEttPredictor>();
    case WindowKind::kSession:
      return std::make_unique<SessionEttPredictor>(spec.session_gap_ms);
    case WindowKind::kCount:
    case WindowKind::kCustom:
      return std::make_unique<UnpredictableEttPredictor>();
  }
  return std::make_unique<UnpredictableEttPredictor>();
}

}  // namespace flowkv
