#include "src/flowkv/ett.h"

#include "src/common/stats.h"
#include "src/obs/trace.h"

namespace flowkv {

std::unique_ptr<EttPredictor> MakeEttPredictor(const OperatorStateSpec& spec) {
  switch (spec.window_kind) {
    case WindowKind::kTumbling:
    case WindowKind::kSliding:
    case WindowKind::kGlobal:
      return std::make_unique<AlignedEttPredictor>();
    case WindowKind::kSession:
      return std::make_unique<SessionEttPredictor>(spec.session_gap_ms);
    case WindowKind::kCount:
    case WindowKind::kCustom:
      return std::make_unique<UnpredictableEttPredictor>();
  }
  return std::make_unique<UnpredictableEttPredictor>();
}

void RecordEttOutcome(int64_t predicted_ms, int64_t actual_ms, StoreStats* stats) {
  if (predicted_ms == EttPredictor::kUnknown || stats == nullptr) {
    return;
  }
  const int64_t abs_error =
      actual_ms >= predicted_ms ? actual_ms - predicted_ms : predicted_ms - actual_ms;
  ++stats->ett_predictions;
  stats->ett_abs_error_ms_sum += abs_error;
  stats->ett_abs_error_ms.Add(static_cast<double>(abs_error));
  obs::TraceInstant("ett_outcome", "ett", "predicted_ms", predicted_ms, "actual_ms", actual_ms);
}

}  // namespace flowkv
