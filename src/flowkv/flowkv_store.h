// FlowKvStore: the composite, semantic-aware store (paper §3, Fig. 5).
//
// At application launch it determines the store pattern from the window
// operation's aggregate-function interface and window-function kind, then
// deploys `m` pattern-specialized store instances whose key spaces partition
// the operator's keys (compactions run per instance on a fraction of the
// state, avoiding latency spikes). At runtime it exposes the Listing-1 API;
// calls route to the owning instance by key hash (aligned window reads drain
// all instances in turn).
#ifndef SRC_FLOWKV_FLOWKV_STORE_H_
#define SRC_FLOWKV_FLOWKV_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/flowkv/aar_store.h"
#include "src/flowkv/aur_store.h"
#include "src/flowkv/ett.h"
#include "src/flowkv/flowkv_options.h"
#include "src/flowkv/rmw_store.h"
#include "src/spe/state.h"

namespace flowkv {

class FlowKvStore {
 public:
  // Determines the pattern from `spec` and opens the instances under `dir`.
  // `predictor_override` (optional) replaces the default ETT predictor —
  // the §8 hook for custom window functions. Pass a factory because each
  // partition owns its predictor.
  using PredictorFactory = std::function<std::unique_ptr<EttPredictor>()>;

  static Status Open(const std::string& dir, const FlowKvOptions& options,
                     const OperatorStateSpec& spec, std::unique_ptr<FlowKvStore>* out,
                     PredictorFactory predictor_override = nullptr);

  ~FlowKvStore();

  FlowKvStore(const FlowKvStore&) = delete;
  FlowKvStore& operator=(const FlowKvStore&) = delete;

  StorePattern pattern() const { return pattern_; }
  int num_partitions() const { return static_cast<int>(std::max(
      std::max(aar_.size(), aur_.size()), rmw_.size())); }

  // ----- AAR API (valid when pattern() == kAppendAligned) -----
  Status Append(const Slice& key, const Slice& value, const Window& w);
  Status GetWindowChunk(const Window& w, std::vector<WindowChunkEntry>* chunk, bool* done);
  // Discards the window's state in every partition without reading it (the
  // consume path for prefetch-pushed windows the client already holds).
  Status DropWindow(const Window& w);

  // ----- AUR API (valid when pattern() == kAppendUnaligned) -----
  Status Append(const Slice& key, const Slice& value, const Window& w, int64_t timestamp);
  Status Get(const Slice& key, const Window& w, std::vector<std::string>* values);
  Status MergeWindows(const Slice& key, const std::vector<Window>& sources, const Window& dst);

  // ----- RMW API (valid when pattern() == kReadModifyWrite) -----
  Status Get(const Slice& key, const Window& w, std::string* accumulator);
  Status Put(const Slice& key, const Window& w, const Slice& accumulator);
  Status Remove(const Slice& key, const Window& w);

  // Snapshots every partition plus a manifest (pattern, m) into
  // `checkpoint_dir`; the engine can upload the directory asynchronously
  // (paper §8 checkpointing discussion).
  Status CheckpointTo(const std::string& checkpoint_dir) const;

  // Opens a store at `dir` seeded from a checkpoint. The spec must describe
  // the same window operation (the manifest's pattern is verified).
  static Status RestoreFrom(const std::string& checkpoint_dir, const std::string& dir,
                            const FlowKvOptions& options, const OperatorStateSpec& spec,
                            std::unique_ptr<FlowKvStore>* out,
                            PredictorFactory predictor_override = nullptr);

  // Sum of all partitions' stats.
  StoreStats GatherStats() const;

  // Direct partition access for tests/benches.
  AurStore* aur_partition(int i) { return aur_[i].get(); }
  RmwStore* rmw_partition(int i) { return rmw_[i].get(); }
  AarStore* aar_partition(int i) { return aar_[i].get(); }

 private:
  FlowKvStore() = default;

  size_t PartitionOf(const Slice& key) const;

  StorePattern pattern_ = StorePattern::kReadModifyWrite;

  std::vector<std::unique_ptr<AarStore>> aar_;
  std::vector<std::unique_ptr<AurStore>> aur_;
  std::vector<std::unique_ptr<RmwStore>> rmw_;

  // Per-window cursor over partitions for aligned chunked reads.
  std::unordered_map<Window, size_t, WindowHash> aligned_read_cursor_;
};

}  // namespace flowkv

#endif  // SRC_FLOWKV_FLOWKV_STORE_H_
