// HashKvStore: a Faster-like unsorted KV store over a hash index and hybrid
// log. This is the paper's non-sorted baseline:
//  - O(1) point access (great for RMW; the paper's Q11/Q12 winner among the
//    existing stores),
//  - epoch-based synchronization that is pure overhead under the SPE's
//    single-thread-per-partition contract (§2.2),
//  - no cheap append: list-append workloads must read the whole existing
//    value and rewrite it, the I/O amplification that makes Faster DNF on
//    the paper's append queries (Fig. 4).
//
// The hash index stores one chain head per bucket; records of all keys that
// hash to a bucket form one chain through their prev_addr pointers, and
// lookups compare keys while walking the chain (newest first).
#ifndef SRC_HASHKV_HASHKV_STORE_H_
#define SRC_HASHKV_HASHKV_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/stats.h"
#include "src/obs/metrics.h"
#include "src/common/status.h"
#include "src/hashkv/epoch.h"
#include "src/hashkv/hybrid_log.h"
#include "src/hashkv/options.h"

namespace flowkv {

class HashKvStore {
 public:
  // `dir` holds the log file(s). Creates the directory.
  static Status Open(const std::string& dir, const HashKvOptions& options,
                     std::unique_ptr<HashKvStore>* out);

  ~HashKvStore();

  HashKvStore(const HashKvStore&) = delete;
  HashKvStore& operator=(const HashKvStore&) = delete;

  // Point read of the latest value. NotFound for absent/deleted keys.
  Status Read(const Slice& key, std::string* value);

  // Blind write: in-place when the record is in the mutable region and the
  // new value fits; otherwise appends a new record version.
  Status Upsert(const Slice& key, const Slice& value);

  // Read-modify-write: updater receives the existing value (or nullptr) and
  // returns the new value. Mirrors Faster's RMW entry point.
  Status Rmw(const Slice& key,
             const std::function<std::string(const std::string* existing)>& updater);

  Status Delete(const Slice& key);

  // Rewrites live records into a fresh log, dropping dead versions. Runs
  // automatically when space amplification exceeds the configured limit.
  Status Compact();

  // Snapshots the full log (spilled prefix + in-memory tail) into a committed
  // checkpoint directory.
  Status CheckpointTo(const std::string& checkpoint_dir);

  // Opens a store in `dir` from a committed checkpoint. The index and live
  // byte estimate are rebuilt by a forward scan of the recovered log.
  static Status RestoreFrom(const std::string& checkpoint_dir, const std::string& dir,
                            const HashKvOptions& options, std::unique_ptr<HashKvStore>* out);

  uint64_t TotalLogBytes() const { return log_->TotalBytes(); }
  uint64_t LiveBytesEstimate() const { return live_bytes_; }
  const StoreStats& stats() const { return stats_; }
  StoreStats* mutable_stats() { return &stats_; }

 private:
  HashKvStore(std::string dir, const HashKvOptions& options);

  Status OpenLog();

  uint64_t BucketOf(const Slice& key) const;

  // Finds the newest record for `key`: fills address/header and (optionally)
  // value. Returns NotFound when absent or newest version is a tombstone
  // (tombstone address still reported via *address for chain bookkeeping).
  Status FindLatest(const Slice& key, uint64_t* address, LogRecordHeader* header,
                    std::string* value);

  Status AppendVersion(const Slice& key, const Slice& value, bool tombstone);

  Status MaybeCompact();

  // Rebuilds bucket heads and live_bytes_ by scanning the log forward from
  // its first record; used after RestoreFrom.
  Status RebuildIndexFromLog();

  std::string dir_;
  HashKvOptions options_;
  std::unique_ptr<HybridLog> log_;
  // Chain heads; atomics model Faster's concurrent index even though the SPE
  // contract is single-threaded (see file comment).
  std::vector<std::atomic<uint64_t>> index_;
  uint64_t bucket_mask_ = 0;
  EpochManager epoch_;
  int epoch_slot_ = 0;
  uint64_t log_generation_ = 0;

  uint64_t live_bytes_ = 0;
  StoreStats stats_;
  // Samples stats_ live under the registering thread's (worker, partition)
  // labels; declared after stats_ so it unregisters before destruction.
  obs::ScopedStatsRegistration stats_registration_{&stats_, "hashkv"};
};

}  // namespace flowkv

#endif  // SRC_HASHKV_HASHKV_STORE_H_
