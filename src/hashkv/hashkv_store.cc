#include "src/hashkv/hashkv_store.h"

#include <bit>
#include <unordered_map>

#include "src/common/checkpoint.h"
#include "src/common/clock.h"
#include "src/common/coding.h"
#include "src/common/env.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace flowkv {

HashKvStore::HashKvStore(std::string dir, const HashKvOptions& options)
    : dir_(std::move(dir)), options_(options) {
  uint64_t buckets = std::bit_ceil(std::max<uint64_t>(options_.index_buckets, 16));
  index_ = std::vector<std::atomic<uint64_t>>(buckets);
  for (auto& head : index_) {
    head.store(0, std::memory_order_relaxed);
  }
  bucket_mask_ = buckets - 1;
}

HashKvStore::~HashKvStore() = default;

Status HashKvStore::Open(const std::string& dir, const HashKvOptions& options,
                         std::unique_ptr<HashKvStore>* out) {
  FLOWKV_RETURN_IF_ERROR(CreateDirs(dir));
  std::unique_ptr<HashKvStore> store(new HashKvStore(dir, options));
  FLOWKV_RETURN_IF_ERROR(store->OpenLog());
  *out = std::move(store);
  return Status::Ok();
}

Status HashKvStore::OpenLog() {
  const std::string path =
      JoinPath(dir_, "hlog_" + std::to_string(log_generation_) + ".dat");
  return HybridLog::Open(path, options_, &log_, &stats_.io);
}

uint64_t HashKvStore::BucketOf(const Slice& key) const {
  return Hash64(key) & bucket_mask_;
}

Status HashKvStore::CheckpointTo(const std::string& checkpoint_dir) {
  CheckpointWriter writer(checkpoint_dir);
  FLOWKV_RETURN_IF_ERROR(writer.Init());
  // The log has no single source file to copy while the tail lives in memory,
  // so stage a full image locally and let the writer checksum it in.
  const std::string staged = JoinPath(dir_, "hlog_snapshot.tmp");
  FLOWKV_RETURN_IF_ERROR(log_->SnapshotTo(staged));
  Status add = writer.AddFile(staged, "hlog.ckpt");
  // Best-effort cleanup of the staging file; `add` carries the real outcome
  // and a leftover .tmp is overwritten by the next checkpoint.
  RemoveFile(staged).IgnoreError();
  FLOWKV_RETURN_IF_ERROR(add);
  std::string meta;
  PutFixed64(&meta, log_->tail());
  FLOWKV_RETURN_IF_ERROR(writer.AddBlob("hashkv_meta.ckpt", meta));
  return writer.Commit();
}

Status HashKvStore::RestoreFrom(const std::string& checkpoint_dir, const std::string& dir,
                                const HashKvOptions& options,
                                std::unique_ptr<HashKvStore>* out) {
  CheckpointReader reader;
  FLOWKV_RETURN_IF_ERROR(CheckpointReader::Open(checkpoint_dir, &reader));
  FLOWKV_RETURN_IF_ERROR(CreateDirs(dir));
  std::unique_ptr<HashKvStore> store(new HashKvStore(dir, options));
  const std::string log_path = JoinPath(dir, "hlog_0.dat");
  FLOWKV_RETURN_IF_ERROR(reader.CopyOut("hlog.ckpt", log_path));
  std::string meta;
  FLOWKV_RETURN_IF_ERROR(reader.ReadEntry("hashkv_meta.ckpt", &meta));
  Slice input(meta);
  uint64_t tail;
  if (!GetFixed64(&input, &tail)) {
    return Status::Corruption("malformed HashKV checkpoint metadata");
  }
  uint64_t size = 0;
  FLOWKV_RETURN_IF_ERROR(GetFileSize(log_path, &size));
  if (size != tail) {
    return Status::Corruption("HashKV checkpoint log size does not match its metadata");
  }
  FLOWKV_RETURN_IF_ERROR(
      HybridLog::OpenForRecovery(log_path, options, &store->log_, &store->stats_.io));
  FLOWKV_RETURN_IF_ERROR(store->RebuildIndexFromLog());
  *out = std::move(store);
  return Status::Ok();
}

Status HashKvStore::RebuildIndexFromLog() {
  // Forward scan: each record overwrites its bucket's head, so the newest
  // version wins, and prev_addr chains are already correct on-log.
  std::unordered_map<std::string, uint64_t> newest_bytes;
  const uint64_t tail = log_->tail();
  uint64_t addr = log_->begin();
  std::string key;
  while (addr < tail) {
    LogRecordHeader h;
    FLOWKV_RETURN_IF_ERROR(log_->ReadKeyAt(addr, &h, &key));
    if (h.total_len != LogRecordHeader::kBytes + h.key_len + h.payload_value_len() ||
        addr + h.total_len > tail || h.prev_addr >= addr) {
      return Status::Corruption("torn record at address " + std::to_string(addr) +
                                " in recovered hashkv log");
    }
    index_[BucketOf(key)].store(addr, std::memory_order_release);
    newest_bytes[key] =
        h.is_tombstone() ? 0 : LogRecordHeader::kBytes + h.key_len + h.payload_value_len();
    addr += h.total_len;
  }
  live_bytes_ = 0;
  for (const auto& [unused_key, bytes] : newest_bytes) {
    live_bytes_ += bytes;
  }
  return Status::Ok();
}

Status HashKvStore::FindLatest(const Slice& key, uint64_t* address, LogRecordHeader* header,
                               std::string* value) {
  uint64_t addr = index_[BucketOf(key)].load(std::memory_order_acquire);
  std::string record_key;
  while (addr != 0) {
    LogRecordHeader h;
    if (value != nullptr) {
      std::string record_value;
      FLOWKV_RETURN_IF_ERROR(log_->ReadRecord(addr, &h, &record_key, &record_value));
      if (Slice(record_key) == key) {
        *address = addr;
        *header = h;
        if (h.is_tombstone()) {
          return Status::NotFound();
        }
        *value = std::move(record_value);
        return Status::Ok();
      }
    } else {
      FLOWKV_RETURN_IF_ERROR(log_->ReadKeyAt(addr, &h, &record_key));
      if (Slice(record_key) == key) {
        *address = addr;
        *header = h;
        return h.is_tombstone() ? Status::NotFound() : Status::Ok();
      }
    }
    addr = h.prev_addr;
  }
  *address = 0;
  return Status::NotFound();
}

Status HashKvStore::Read(const Slice& key, std::string* value) {
  ScopedTimer t(&stats_.read_nanos);
  ++stats_.reads;
  epoch_.Protect(epoch_slot_);
  uint64_t addr;
  LogRecordHeader header;
  Status s = FindLatest(key, &addr, &header, value);
  epoch_.Unprotect(epoch_slot_);
  return s;
}

Status HashKvStore::AppendVersion(const Slice& key, const Slice& value, bool tombstone) {
  auto& head = index_[BucketOf(key)];
  // Faster-style CAS install loop (single-threaded here, but the atomic
  // traffic is the point of this baseline).
  while (true) {
    uint64_t prev = head.load(std::memory_order_acquire);
    uint64_t addr;
    FLOWKV_RETURN_IF_ERROR(log_->Append(key, value, tombstone, prev, &addr));
    uint64_t expected = prev;
    if (head.compare_exchange_strong(expected, addr, std::memory_order_acq_rel)) {
      return Status::Ok();
    }
  }
}

Status HashKvStore::Upsert(const Slice& key, const Slice& value) {
  {
    ScopedTimer t(&stats_.write_nanos);
    ++stats_.writes;
    epoch_.Protect(epoch_slot_);
    uint64_t addr;
    LogRecordHeader header;
    std::string unused;
    Status found = FindLatest(key, &addr, &header, nullptr);
    if (found.ok() && value.size() <= header.value_len &&
        log_->UpdateInPlace(addr, value).ok()) {
      epoch_.Unprotect(epoch_slot_);
      return Status::Ok();
    }
    const uint64_t old_bytes =
        found.ok() ? LogRecordHeader::kBytes + header.key_len + header.payload_value_len() : 0;
    Status s = AppendVersion(key, value, /*tombstone=*/false);
    if (!s.ok()) {
      epoch_.Unprotect(epoch_slot_);
      return s;
    }
    live_bytes_ += LogRecordHeader::kBytes + key.size() + value.size();
    live_bytes_ -= std::min<uint64_t>(live_bytes_, old_bytes);
    epoch_.Unprotect(epoch_slot_);
    epoch_.Bump();
  }
  return MaybeCompact();
}

Status HashKvStore::Rmw(const Slice& key,
                        const std::function<std::string(const std::string* existing)>& updater) {
  {
    ScopedTimer t(&stats_.write_nanos);
    ++stats_.writes;
    epoch_.Protect(epoch_slot_);
    uint64_t addr;
    LogRecordHeader header;
    std::string existing;
    Status found = FindLatest(key, &addr, &header, &existing);
    std::string updated = updater(found.ok() ? &existing : nullptr);
    if (found.ok() && updated.size() == existing.size() &&
        log_->UpdateInPlace(addr, updated).ok()) {
      epoch_.Unprotect(epoch_slot_);
      return Status::Ok();
    }
    const uint64_t old_bytes =
        found.ok() ? LogRecordHeader::kBytes + header.key_len + header.payload_value_len() : 0;
    Status s = AppendVersion(key, updated, /*tombstone=*/false);
    if (!s.ok()) {
      epoch_.Unprotect(epoch_slot_);
      return s;
    }
    live_bytes_ += LogRecordHeader::kBytes + key.size() + updated.size();
    live_bytes_ -= std::min<uint64_t>(live_bytes_, old_bytes);
    epoch_.Unprotect(epoch_slot_);
    epoch_.Bump();
  }
  return MaybeCompact();
}

Status HashKvStore::Delete(const Slice& key) {
  {
    ScopedTimer t(&stats_.write_nanos);
    ++stats_.writes;
    epoch_.Protect(epoch_slot_);
    uint64_t addr;
    LogRecordHeader header;
    Status found = FindLatest(key, &addr, &header, nullptr);
    if (found.ok()) {
      const uint64_t old_bytes =
          LogRecordHeader::kBytes + header.key_len + header.payload_value_len();
      live_bytes_ -= std::min<uint64_t>(live_bytes_, old_bytes);
      Status s = AppendVersion(key, Slice(), /*tombstone=*/true);
      if (!s.ok()) {
        epoch_.Unprotect(epoch_slot_);
        return s;
      }
    }
    epoch_.Unprotect(epoch_slot_);
    epoch_.Bump();
  }
  return MaybeCompact();
}

Status HashKvStore::MaybeCompact() {
  const uint64_t total = log_->TotalBytes();
  if (total < options_.compaction_min_bytes) {
    return Status::Ok();
  }
  const uint64_t live = std::max<uint64_t>(live_bytes_, 1);
  if (static_cast<double>(total) / static_cast<double>(live) <
      options_.max_space_amplification) {
    return Status::Ok();
  }
  return Compact();
}

Status HashKvStore::Compact() {
  ScopedTimer t(&stats_.compaction_nanos);
  obs::TraceSpan span("compaction", "compaction");
  ++stats_.compactions;

  // Collect the newest live version of every key by walking every chain.
  std::unique_ptr<HybridLog> old_log = std::move(log_);
  const std::string old_path_dir = dir_;
  ++log_generation_;
  FLOWKV_RETURN_IF_ERROR(OpenLog());

  uint64_t new_live = 0;
  std::string key, value;
  std::vector<std::pair<std::string, std::string>> chain_live;
  for (auto& head : index_) {
    uint64_t addr = head.load(std::memory_order_acquire);
    if (addr == 0) {
      continue;
    }
    chain_live.clear();
    // Newest-first walk; remember which keys we've already resolved.
    std::vector<std::string> seen;
    while (addr != 0) {
      LogRecordHeader h;
      FLOWKV_RETURN_IF_ERROR(old_log->ReadRecord(addr, &h, &key, &value));
      bool duplicate = false;
      for (const auto& s : seen) {
        if (s == key) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        seen.push_back(key);
        if (!h.is_tombstone()) {
          chain_live.emplace_back(key, value);
        }
      }
      addr = h.prev_addr;
    }
    // Rebuild the chain in the new log (oldest first so newest ends at head).
    uint64_t new_head = 0;
    for (auto it = chain_live.rbegin(); it != chain_live.rend(); ++it) {
      uint64_t new_addr;
      FLOWKV_RETURN_IF_ERROR(
          log_->Append(it->first, it->second, /*tombstone=*/false, new_head, &new_addr));
      new_head = new_addr;
      new_live += LogRecordHeader::kBytes + it->first.size() + it->second.size();
    }
    head.store(new_head, std::memory_order_release);
  }
  live_bytes_ = new_live;

  // Old log file is dead; epoch-protected reclamation (drain, then unlink).
  std::string dead_path =
      JoinPath(old_path_dir, "hlog_" + std::to_string(log_generation_ - 1) + ".dat");
  old_log.reset();
  // Best-effort unlink: a dead log that survives (e.g. EACCES) wastes disk
  // but is never read again — generation numbering skips it on reopen.
  epoch_.BumpWithAction([dead_path] { RemoveFile(dead_path).IgnoreError(); });
  epoch_.Drain();
  FLOWKV_LOG(kDebug) << "hashkv compaction: live=" << new_live << "B";
  return Status::Ok();
}

}  // namespace flowkv
