// Tuning knobs for the hash-log store (mirrors the Faster options the paper
// configures: number of hash index entries and in-memory log size).
#ifndef SRC_HASHKV_OPTIONS_H_
#define SRC_HASHKV_OPTIONS_H_

#include <cstdint>

namespace flowkv {

struct HashKvOptions {
  // Number of hash buckets (rounded up to a power of two). The paper's
  // evaluation uses 262144 per Faster instance.
  uint64_t index_buckets = 1 << 16;

  // Bytes of the log kept in memory (the hybrid log's in-memory region).
  uint64_t memory_bytes = 32 * 1024 * 1024;

  // Log page size; records never span pages.
  uint64_t page_bytes = 256 * 1024;

  // Fraction of the in-memory region where in-place updates are allowed
  // (Faster's mutable region); the rest is read-copy-update.
  double mutable_fraction = 0.5;

  // Compaction runs when total log bytes exceed live bytes by this factor.
  double max_space_amplification = 4.0;

  // Don't bother compacting logs smaller than this.
  uint64_t compaction_min_bytes = 8 * 1024 * 1024;
};

}  // namespace flowkv

#endif  // SRC_HASHKV_OPTIONS_H_
