// Epoch-based protection in the style of Faster. The paper's point (§2.2,
// §6.3) is that this synchronization machinery is pure overhead for stream
// processing, where each store instance is accessed by exactly one thread —
// so this implementation is deliberately kept (atomic traffic and all) in the
// baseline store, and deliberately absent from FlowKV's stores.
#ifndef SRC_HASHKV_EPOCH_H_
#define SRC_HASHKV_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/thread_annotations.h"

namespace flowkv {

class EpochManager {
 public:
  static constexpr int kMaxThreads = 64;

  EpochManager() : current_epoch_(1) {
    for (auto& slot : slots_) {
      slot.store(0, std::memory_order_relaxed);
    }
  }

  // Enters a protected region; the calling thread pins the current epoch.
  void Protect(int thread_slot) {
    slots_[thread_slot].store(current_epoch_.load(std::memory_order_acquire),
                              std::memory_order_release);
  }

  void Unprotect(int thread_slot) {
    slots_[thread_slot].store(0, std::memory_order_release);
  }

  // Advances the global epoch; returns the new value.
  uint64_t Bump() { return current_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1; }

  // Oldest epoch any thread still pins (the "safe to reclaim before" bound).
  uint64_t SafeEpoch() const {
    uint64_t safe = current_epoch_.load(std::memory_order_acquire);
    for (const auto& slot : slots_) {
      uint64_t pinned = slot.load(std::memory_order_acquire);
      if (pinned != 0 && pinned < safe) {
        safe = pinned;
      }
    }
    return safe;
  }

  // Registers an action to run once every thread has left the current epoch;
  // Drain() executes the ones that became safe.
  void BumpWithAction(std::function<void()> action) {
    uint64_t epoch = Bump();
    MutexLock lock(&actions_mu_);
    pending_actions_.push_back({epoch, std::move(action)});
  }

  void Drain() {
    uint64_t safe = SafeEpoch();
    std::vector<std::function<void()>> runnable;
    {
      MutexLock lock(&actions_mu_);
      auto it = pending_actions_.begin();
      while (it != pending_actions_.end()) {
        if (it->epoch < safe) {
          runnable.push_back(std::move(it->action));
          it = pending_actions_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& action : runnable) {
      action();
    }
  }

 private:
  struct PendingAction {
    uint64_t epoch;
    std::function<void()> action;
  };

  std::atomic<uint64_t> current_epoch_;
  std::atomic<uint64_t> slots_[kMaxThreads];
  Mutex actions_mu_;
  std::vector<PendingAction> pending_actions_ GUARDED_BY(actions_mu_);
};

}  // namespace flowkv

#endif  // SRC_HASHKV_EPOCH_H_
