// Faster-style hybrid log: a single logical address space whose tail lives in
// memory (paged) and whose head has been spilled to an on-disk file. The
// youngest part of the in-memory region (the "mutable region") permits
// in-place updates; everything older is copy-on-write.
//
// Addresses are stable byte offsets; segments are written to disk in address
// order, so a disk offset equals the logical address. Records never span
// segments (an oversized record gets a dedicated segment).
#ifndef SRC_HASHKV_HYBRID_LOG_H_
#define SRC_HASHKV_HYBRID_LOG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "src/common/file.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/hashkv/options.h"

namespace flowkv {

// On-log record header (fixed width, little-endian):
//   fixed32 total_len   -- header + key + value (excluding page padding)
//   fixed64 prev_addr   -- previous record in this hash chain (0 = none)
//   fixed32 key_len
//   fixed32 value_len   -- kTombstoneValueLen marks a delete
struct LogRecordHeader {
  static constexpr uint32_t kTombstoneValueLen = 0xffffffffu;
  static constexpr size_t kBytes = 4 + 8 + 4 + 4;

  uint32_t total_len;
  uint64_t prev_addr;
  uint32_t key_len;
  uint32_t value_len;  // kTombstoneValueLen for tombstones

  bool is_tombstone() const { return value_len == kTombstoneValueLen; }
  uint32_t payload_value_len() const { return is_tombstone() ? 0 : value_len; }
};

class HybridLog {
 public:
  // `path` is the spill file for frozen pages. Creates/truncates it.
  static Status Open(const std::string& path, const HashKvOptions& options,
                     std::unique_ptr<HybridLog>* out, IoStats* stats = nullptr);

  // Opens `path` as a recovered log: the whole file is the frozen prefix
  // (mem_begin == tail == file size) and appends resume after it. The file
  // must be a full logical image, e.g. one written by SnapshotTo.
  static Status OpenForRecovery(const std::string& path, const HashKvOptions& options,
                                std::unique_ptr<HybridLog>* out, IoStats* stats = nullptr);

  ~HybridLog() = default;

  HybridLog(const HybridLog&) = delete;
  HybridLog& operator=(const HybridLog&) = delete;

  // Appends a record; returns its address (never 0: the log starts with a
  // one-page preamble so address 0 can mean "null").
  Status Append(const Slice& key, const Slice& value, bool tombstone, uint64_t prev_addr,
                uint64_t* address);

  // Reads the record at `address` (memory or disk).
  Status ReadRecord(uint64_t address, LogRecordHeader* header, std::string* key,
                    std::string* value) const;

  // Reads only the header + key (enough for chain walks).
  Status ReadKeyAt(uint64_t address, LogRecordHeader* header, std::string* key) const;

  // In-place overwrite of the value at `address`; only legal when
  // InMutableRegion(address) and the new value has exactly the stored size.
  Status UpdateInPlace(uint64_t address, const Slice& value);

  // Writes the full logical image [0, tail) durably to `path`: the spilled
  // prefix followed by the in-memory pages. The result round-trips through
  // OpenForRecovery.
  Status SnapshotTo(const std::string& path);

  bool InMemory(uint64_t address) const { return address >= mem_begin_; }
  bool InMutableRegion(uint64_t address) const;

  uint64_t tail() const { return tail_; }
  uint64_t begin() const { return begin_; }
  // Logical bytes between begin() and tail(): total log footprint.
  uint64_t TotalBytes() const { return tail_ - begin_; }

  // Marks everything before `address` dead (after compaction copied the live
  // records elsewhere). The disk file is rewritten by the store, not here.
  void TrimTo(uint64_t address) { begin_ = address; }

 private:
  HybridLog(std::string path, const HashKvOptions& options, IoStats* stats);

  Status EnsureRoomInPage(size_t record_bytes);
  Status SpillOldestPage();
  // Pointer to in-memory bytes for `address`; null if spilled.
  const char* MemPtr(uint64_t address) const;
  char* MutableMemPtr(uint64_t address);

  std::string path_;
  HashKvOptions options_;
  IoStats* stats_;
  std::unique_ptr<AppendFile> file_;            // frozen pages, address order
  std::unique_ptr<RandomAccessFile> file_read_;  // lazily opened reader

  std::deque<std::string> pages_;  // in-memory pages, oldest first
  uint64_t mem_begin_ = 0;         // address of pages_.front()[0]
  uint64_t tail_ = 0;              // next append address
  uint64_t begin_ = 0;             // logical start (advanced by compaction)
};

}  // namespace flowkv

#endif  // SRC_HASHKV_HYBRID_LOG_H_
