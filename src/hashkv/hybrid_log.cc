#include "src/hashkv/hybrid_log.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/coding.h"
#include "src/common/env.h"

namespace flowkv {

namespace {

void EncodeHeader(char* dst, const LogRecordHeader& h) {
  EncodeFixed32(dst, h.total_len);
  EncodeFixed64(dst + 4, h.prev_addr);
  EncodeFixed32(dst + 12, h.key_len);
  EncodeFixed32(dst + 16, h.value_len);
}

void DecodeHeader(const char* src, LogRecordHeader* h) {
  h->total_len = DecodeFixed32(src);
  h->prev_addr = DecodeFixed64(src + 4);
  h->key_len = DecodeFixed32(src + 12);
  h->value_len = DecodeFixed32(src + 16);
}

constexpr uint64_t kPreambleBytes = 16;  // addresses < 16 are never records; 0 = null

}  // namespace

HybridLog::HybridLog(std::string path, const HashKvOptions& options, IoStats* stats)
    : path_(std::move(path)), options_(options), stats_(stats) {}

Status HybridLog::Open(const std::string& path, const HashKvOptions& options,
                       std::unique_ptr<HybridLog>* out, IoStats* stats) {
  std::unique_ptr<HybridLog> log(new HybridLog(path, options, stats));
  FLOWKV_RETURN_IF_ERROR(AppendFile::Open(path, /*reopen=*/false, &log->file_, stats));
  // Preamble occupies [0, 16) so that address 0 can act as a null pointer.
  log->pages_.emplace_back();
  log->pages_.back().assign(kPreambleBytes, '\0');
  log->mem_begin_ = 0;
  log->tail_ = kPreambleBytes;
  log->begin_ = kPreambleBytes;
  *out = std::move(log);
  return Status::Ok();
}

Status HybridLog::OpenForRecovery(const std::string& path, const HashKvOptions& options,
                                  std::unique_ptr<HybridLog>* out, IoStats* stats) {
  uint64_t size = 0;
  FLOWKV_RETURN_IF_ERROR(GetFileSize(path, &size));
  if (size < kPreambleBytes) {
    return Status::Corruption("hybrid log image shorter than its preamble: " + path);
  }
  std::unique_ptr<HybridLog> log(new HybridLog(path, options, stats));
  FLOWKV_RETURN_IF_ERROR(AppendFile::Open(path, /*reopen=*/true, &log->file_, stats));
  // The whole image is the frozen prefix; appends resume right after it in an
  // empty open page, so disk offsets keep equalling logical addresses.
  log->pages_.emplace_back();
  log->mem_begin_ = size;
  log->tail_ = size;
  log->begin_ = kPreambleBytes;
  *out = std::move(log);
  return Status::Ok();
}

Status HybridLog::SnapshotTo(const std::string& path) {
  // Push buffered spill bytes so the on-disk prefix really is [0, mem_begin_).
  FLOWKV_RETURN_IF_ERROR(file_->Flush());
  std::unique_ptr<AppendFile> out;
  FLOWKV_RETURN_IF_ERROR(AppendFile::Open(path, /*reopen=*/false, &out, stats_));
  if (mem_begin_ > 0) {
    std::unique_ptr<SequentialFile> in;
    FLOWKV_RETURN_IF_ERROR(SequentialFile::Open(path_, &in, stats_));
    std::string scratch(256 * 1024, '\0');
    uint64_t remaining = mem_begin_;
    while (remaining > 0) {
      Slice got;
      FLOWKV_RETURN_IF_ERROR(
          in->Read(std::min<uint64_t>(scratch.size(), remaining), &got, scratch.data()));
      if (got.empty()) {
        return Status::Corruption("hybrid log spill file shorter than its frozen prefix");
      }
      FLOWKV_RETURN_IF_ERROR(out->Append(got));
      remaining -= got.size();
    }
  }
  for (const auto& page : pages_) {
    FLOWKV_RETURN_IF_ERROR(out->Append(page));
  }
  FLOWKV_RETURN_IF_ERROR(out->Sync());
  return out->Close();
}

const char* HybridLog::MemPtr(uint64_t address) const {
  if (address < mem_begin_ || address >= tail_) {
    return nullptr;
  }
  // Segments are contiguous in address space; walk from the front. The deque
  // is short (memory_bytes / page_bytes entries), so linear search is fine.
  uint64_t start = mem_begin_;
  for (const auto& page : pages_) {
    if (address < start + page.size()) {
      return page.data() + (address - start);
    }
    start += page.size();
  }
  return nullptr;
}

char* HybridLog::MutableMemPtr(uint64_t address) {
  return const_cast<char*>(MemPtr(address));
}

bool HybridLog::InMutableRegion(uint64_t address) const {
  const uint64_t mutable_bytes =
      static_cast<uint64_t>(static_cast<double>(options_.memory_bytes) * options_.mutable_fraction);
  const uint64_t boundary = tail_ > mutable_bytes ? tail_ - mutable_bytes : 0;
  return address >= std::max(boundary, mem_begin_);
}

Status HybridLog::SpillOldestPage() {
  // Never spill the open tail segment.
  if (pages_.size() <= 1) {
    return Status::Ok();
  }
  std::string& victim = pages_.front();
  FLOWKV_RETURN_IF_ERROR(file_->Append(victim));
  FLOWKV_RETURN_IF_ERROR(file_->Flush());
  mem_begin_ += victim.size();
  pages_.pop_front();
  return Status::Ok();
}

Status HybridLog::EnsureRoomInPage(size_t record_bytes) {
  std::string& open_page = pages_.back();
  if (open_page.size() + record_bytes > options_.page_bytes && !open_page.empty()) {
    // Seal the current segment and open a new one. Oversized records get a
    // dedicated segment; segments stay contiguous in address space.
    pages_.emplace_back();
    pages_.back().reserve(std::max<size_t>(record_bytes, options_.page_bytes));
  }
  while (tail_ - mem_begin_ > options_.memory_bytes && pages_.size() > 1) {
    FLOWKV_RETURN_IF_ERROR(SpillOldestPage());
  }
  return Status::Ok();
}

Status HybridLog::Append(const Slice& key, const Slice& value, bool tombstone,
                         uint64_t prev_addr, uint64_t* address) {
  LogRecordHeader h;
  h.key_len = static_cast<uint32_t>(key.size());
  h.value_len = tombstone ? LogRecordHeader::kTombstoneValueLen
                          : static_cast<uint32_t>(value.size());
  const size_t payload = key.size() + (tombstone ? 0 : value.size());
  h.total_len = static_cast<uint32_t>(LogRecordHeader::kBytes + payload);
  h.prev_addr = prev_addr;

  FLOWKV_RETURN_IF_ERROR(EnsureRoomInPage(h.total_len));
  std::string& page = pages_.back();
  *address = tail_;

  char header_buf[LogRecordHeader::kBytes];
  EncodeHeader(header_buf, h);
  page.append(header_buf, LogRecordHeader::kBytes);
  page.append(key.data(), key.size());
  if (!tombstone) {
    page.append(value.data(), value.size());
  }
  tail_ += h.total_len;
  return Status::Ok();
}

Status HybridLog::ReadKeyAt(uint64_t address, LogRecordHeader* header, std::string* key) const {
  return ReadRecord(address, header, key, nullptr);
}

Status HybridLog::ReadRecord(uint64_t address, LogRecordHeader* header, std::string* key,
                             std::string* value) const {
  if (address < kPreambleBytes || address >= tail_) {
    return Status::InvalidArgument("log address out of range");
  }
  if (const char* p = MemPtr(address)) {
    DecodeHeader(p, header);
    key->assign(p + LogRecordHeader::kBytes, header->key_len);
    if (value != nullptr) {
      value->assign(p + LogRecordHeader::kBytes + header->key_len,
                    header->payload_value_len());
    }
    return Status::Ok();
  }
  // Spilled to disk: the file offset equals the address.
  if (!file_read_) {
    auto* self = const_cast<HybridLog*>(this);
    FLOWKV_RETURN_IF_ERROR(RandomAccessFile::Open(path_, &self->file_read_, stats_));
  }
  char header_buf[LogRecordHeader::kBytes];
  Slice got;
  FLOWKV_RETURN_IF_ERROR(file_read_->Read(address, LogRecordHeader::kBytes, &got, header_buf));
  DecodeHeader(got.data(), header);
  const size_t payload = header->key_len + header->payload_value_len();
  std::string buf;
  buf.resize(payload);
  FLOWKV_RETURN_IF_ERROR(
      file_read_->Read(address + LogRecordHeader::kBytes, payload, &got, buf.data()));
  key->assign(got.data(), header->key_len);
  if (value != nullptr) {
    value->assign(got.data() + header->key_len, header->payload_value_len());
  }
  return Status::Ok();
}

Status HybridLog::UpdateInPlace(uint64_t address, const Slice& value) {
  char* p = MutableMemPtr(address);
  if (p == nullptr || !InMutableRegion(address)) {
    return Status::FailedPrecondition("address not in the mutable region");
  }
  LogRecordHeader h;
  DecodeHeader(p, &h);
  if (h.is_tombstone() || value.size() > h.value_len) {
    return Status::FailedPrecondition("in-place update does not fit");
  }
  // Shrinking updates rewrite the header's value_len; the freed bytes stay
  // as internal fragmentation until compaction.
  EncodeFixed32(p + 16, static_cast<uint32_t>(value.size()));
  std::memcpy(p + LogRecordHeader::kBytes + h.key_len, value.data(), value.size());
  return Status::Ok();
}

}  // namespace flowkv
