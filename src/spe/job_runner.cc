#include "src/spe/job_runner.h"

#include <algorithm>
#include <thread>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/obs/context.h"
#include "src/obs/reporter.h"
#include "src/obs/trace.h"

namespace flowkv {

namespace {

// Sink that counts results and, in fixed-rate mode, records the lag between
// each result and the ideal wall-clock schedule of the tuple that caused it.
class SinkCollector : public Collector {
 public:
  SinkCollector(Histogram* latency_ms, const int64_t* current_ideal_ns, bool record_latency)
      : latency_ms_(latency_ms),
        current_ideal_ns_(current_ideal_ns),
        record_latency_(record_latency) {}

  void set_warm(bool warm) { warm_ = warm; }

  Status Emit(const Event& event) override {
    ++count_;
    if (record_latency_ && warm_) {
      double lag_ms =
          static_cast<double>(MonotonicNanos() - *current_ideal_ns_) / 1e6;
      latency_ms_->Add(std::max(lag_ms, 0.001));
    }
    return Status::Ok();
  }

  uint64_t count() const { return count_; }

 private:
  Histogram* latency_ms_;
  const int64_t* current_ideal_ns_;
  bool record_latency_;
  bool warm_ = false;
  uint64_t count_ = 0;
};

WorkerReport RunWorker(const JobConfig& config, int worker, const SourceFactory& source_factory,
                       const PipelineFactory& pipeline_factory,
                       StateBackendFactory* backend_factory,
                       obs::WorkerProgress* progress) {
  // Labels everything this thread creates/records (stores opened by
  // pipeline.Open below, trace events, metrics) with the worker id.
  obs::WorkerScope obs_scope(worker);
  WorkerReport report;
  Pipeline pipeline;
  report.status = pipeline_factory(worker, &pipeline);
  if (!report.status.ok()) {
    return report;
  }

  const bool fixed_rate = config.target_rate > 0;
  int64_t current_ideal_ns = MonotonicNanos();
  SinkCollector sink(&report.latency_ms, &current_ideal_ns, fixed_rate);
  report.status = pipeline.Open(backend_factory, worker, &sink);
  if (!report.status.ok()) {
    return report;
  }

  std::unique_ptr<SourceIterator> source = source_factory(worker);
  const int64_t start_ns = MonotonicNanos();
  const int64_t start_cpu_ns = ThreadCpuNanos();
  const double ns_per_event = fixed_rate ? 1e9 / config.target_rate : 0;

  Event event;
  int64_t max_timestamp = INT64_MIN;
  int events_since_watermark = 0;
  while (source->Next(&event)) {
    if (report.events_in == config.latency_warmup_events) {
      sink.set_warm(true);
    }
    if (fixed_rate) {
      current_ideal_ns =
          start_ns + static_cast<int64_t>(static_cast<double>(report.events_in) * ns_per_event);
      const int64_t now = MonotonicNanos();
      if (progress != nullptr) {
        progress->lag_ms = now > current_ideal_ns ? (now - current_ideal_ns) / 1'000'000 : 0;
      }
      if (now < current_ideal_ns) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(current_ideal_ns - now));
      } else if ((now - current_ideal_ns) / 1'000'000 > config.fail_lag_ms) {
        if (progress != nullptr) {
          progress->lag_ms = (now - current_ideal_ns) / 1'000'000;
        }
        report.status = Status::ResourceExhausted(
            "worker " + std::to_string(worker) + " fell " +
            std::to_string((now - current_ideal_ns) / 1'000'000) +
            "ms behind the input rate (backpressure failure)");
        break;
      }
    }

    report.status = pipeline.Process(event);
    if (!report.status.ok()) {
      break;
    }
    ++report.events_in;
    if (progress != nullptr) {
      progress->events_in = static_cast<int64_t>(report.events_in);
      progress->results_out = static_cast<int64_t>(sink.count());
    }
    if (config.max_wall_seconds > 0 && (report.events_in & 0x3ff) == 0 &&
        static_cast<double>(MonotonicNanos() - start_ns) / 1e9 > config.max_wall_seconds) {
      report.status = Status::ResourceExhausted(
          "did not finish within " + std::to_string(config.max_wall_seconds) + "s (DNF)");
      break;
    }
    max_timestamp = std::max(max_timestamp, event.timestamp);
    if (++events_since_watermark >= config.watermark_interval_events) {
      events_since_watermark = 0;
      obs::TraceInstant("watermark_advance", "spe", "watermark_ms",
                        max_timestamp - config.allowed_lateness_ms);
      report.status = pipeline.AdvanceWatermark(max_timestamp - config.allowed_lateness_ms);
      if (!report.status.ok()) {
        break;
      }
    }
  }
  if (report.status.ok()) {
    report.status = pipeline.Finish();
  }
  report.wall_seconds = static_cast<double>(MonotonicNanos() - start_ns) / 1e9;
  report.cpu_seconds = static_cast<double>(ThreadCpuNanos() - start_cpu_ns) / 1e9;
  report.results_out = sink.count();
  if (progress != nullptr) {
    progress->results_out = static_cast<int64_t>(report.results_out);
  }
  report.store_stats = pipeline.GatherStats();
  return report;
}

}  // namespace

uint64_t JobReport::TotalEventsIn() const {
  uint64_t total = 0;
  for (const auto& w : workers) {
    total += w.events_in;
  }
  return total;
}

uint64_t JobReport::TotalResults() const {
  uint64_t total = 0;
  for (const auto& w : workers) {
    total += w.results_out;
  }
  return total;
}

double JobReport::TotalCpuSeconds() const {
  double total = 0;
  for (const auto& w : workers) {
    total += w.cpu_seconds;
  }
  return total;
}

double JobReport::MaxWallSeconds() const {
  double max_wall = 0;
  for (const auto& w : workers) {
    max_wall = std::max(max_wall, w.wall_seconds);
  }
  return max_wall;
}

double JobReport::Throughput() const {
  const double wall = MaxWallSeconds();
  return wall <= 0 ? 0 : static_cast<double>(TotalEventsIn()) / wall;
}

StoreStats JobReport::AggregateStoreStats() const {
  StoreStats total;
  for (const auto& w : workers) {
    total.MergeFrom(w.store_stats);
  }
  return total;
}

Histogram JobReport::AggregateLatency() const {
  Histogram total;
  for (const auto& w : workers) {
    total.Merge(w.latency_ms);
  }
  return total;
}

JobReport RunJob(const JobConfig& config, const SourceFactory& source_factory,
                 const PipelineFactory& pipeline_factory, StateBackendFactory* backend_factory) {
  JobReport report;
  report.workers.resize(config.workers);

  const bool tracing = !config.trace_out_path.empty();
  if (tracing) {
    obs::Tracing::Enable(config.trace_ring_capacity);
  }
  obs::PeriodicReporter reporter;
  std::vector<obs::WorkerProgress*> progress(config.workers, nullptr);
  if (!config.metrics_out_path.empty()) {
    for (int w = 0; w < config.workers; ++w) {
      progress[w] = reporter.RegisterWorker(w);
    }
    if (!reporter.Start(config.metrics_out_path, config.metrics_interval_ms)) {
      FLOWKV_LOG(kWarn) << "cannot open metrics output " << config.metrics_out_path;
    }
  }

  if (config.workers == 1) {
    report.workers[0] =
        RunWorker(config, 0, source_factory, pipeline_factory, backend_factory, progress[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(config.workers);
    for (int w = 0; w < config.workers; ++w) {
      threads.emplace_back([&, w] {
        report.workers[w] =
            RunWorker(config, w, source_factory, pipeline_factory, backend_factory, progress[w]);
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  reporter.Stop();
  if (tracing) {
    obs::Tracing::Disable();
    if (!obs::Tracing::ExportChromeTrace(config.trace_out_path)) {
      FLOWKV_LOG(kWarn) << "cannot write trace output " << config.trace_out_path;
    }
  }
  report.status = Status::Ok();
  for (const auto& w : report.workers) {
    if (!w.status.ok()) {
      report.status = w.status;
      break;
    }
  }
  return report;
}

}  // namespace flowkv
