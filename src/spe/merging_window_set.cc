#include "src/spe/merging_window_set.h"

#include <algorithm>

namespace flowkv {

MergingWindowSet::MergeResult MergingWindowSet::AddWindow(const Slice& key,
                                                          const Window& proto) {
  MergeResult result;
  auto& actives = actives_[key.ToString()];

  Window merged = proto;
  std::vector<ActiveWindow> overlapping;
  std::vector<ActiveWindow> disjoint;
  for (const auto& active : actives) {
    if (active.window.Intersects(merged)) {
      merged = merged.CoveringUnion(active.window);
      overlapping.push_back(active);
    } else {
      disjoint.push_back(active);
    }
  }
  // A freshly-covered active may now touch a previously-disjoint one; iterate
  // until the union stabilizes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = disjoint.begin(); it != disjoint.end();) {
      if (it->window.Intersects(merged)) {
        merged = merged.CoveringUnion(it->window);
        overlapping.push_back(*it);
        it = disjoint.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }

  result.merged = merged;
  if (overlapping.empty()) {
    result.state_window = proto;
  } else {
    // The earliest existing window keeps the state label; the rest fold in.
    std::sort(overlapping.begin(), overlapping.end(),
              [](const ActiveWindow& a, const ActiveWindow& b) {
                return a.state_window < b.state_window;
              });
    result.state_window = overlapping.front().state_window;
    for (size_t i = 1; i < overlapping.size(); ++i) {
      result.absorbed_state_windows.push_back(overlapping[i].state_window);
    }
    for (const auto& old : overlapping) {
      result.replaced_windows.push_back(old.window);
    }
  }

  disjoint.push_back(ActiveWindow{merged, result.state_window});
  actives = std::move(disjoint);
  return result;
}

void MergingWindowSet::Retire(const Slice& key, const Window& window) {
  auto it = actives_.find(key.ToString());
  if (it == actives_.end()) {
    return;
  }
  auto& actives = it->second;
  actives.erase(std::remove_if(actives.begin(), actives.end(),
                               [&](const ActiveWindow& a) { return a.window == window; }),
                actives.end());
  if (actives.empty()) {
    actives_.erase(it);
  }
}

size_t MergingWindowSet::ActiveCount(const Slice& key) const {
  auto it = actives_.find(key.ToString());
  return it == actives_.end() ? 0 : it->second.size();
}

size_t MergingWindowSet::TotalActive() const {
  size_t total = 0;
  for (const auto& [key, actives] : actives_) {
    total += actives.size();
  }
  return total;
}

}  // namespace flowkv
