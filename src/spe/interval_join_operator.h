// Interval join (paper §8, "Join Operations"): joins two keyed streams A and
// B, emitting join(a, b) for every pair with the same key whose timestamps
// satisfy  b.timestamp - a.timestamp ∈ [lower_bound, upper_bound].
//
// Unlike the windowed join (NEXMark Q8, which FlowKV supports natively via
// the AAR pattern), interval joins have per-tuple relative windows. State is
// kept per (side, key, time-bucket) through the RMW interface: each arriving
// tuple is appended to its bucket and probes the other side's buckets that
// could contain partners; buckets are garbage-collected by event-time timers
// once the watermark passes their reach.
//
// Both streams arrive interleaved on one input; `side_of` labels each event
// (0 = A/left, 1 = B/right). Each pair is emitted exactly once (when its
// second element arrives).
#ifndef SRC_SPE_INTERVAL_JOIN_OPERATOR_H_
#define SRC_SPE_INTERVAL_JOIN_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>

#include "src/spe/operator.h"
#include "src/spe/timer_service.h"

namespace flowkv {

struct IntervalJoinConfig {
  std::string name;

  // Labels each input event: 0 = left (A), 1 = right (B).
  std::function<int(const Event&)> side_of;

  // Right-minus-left timestamp bounds, inclusive. lower may be negative
  // (right tuples slightly before the left one still join).
  int64_t lower_bound_ms = 0;
  int64_t upper_bound_ms = 0;

  // State bucket granularity; 0 = derived from the bound span.
  int64_t bucket_ms = 0;

  // Produces the joined output event; default concatenates the values with
  // '|' and uses the later timestamp.
  std::function<Event(const Event& left, const Event& right)> join;
};

class IntervalJoinOperator : public Operator {
 public:
  explicit IntervalJoinOperator(IntervalJoinConfig config);

  const std::string& name() const override { return config_.name; }
  bool IsStateful() const override { return true; }

  Status Open(StateBackend* backend) override;
  Status ProcessEvent(const Event& event, Collector* out) override;
  Status OnWatermark(int64_t watermark, Collector* out) override;
  Status Finish(Collector* out) override;

 private:
  // Appends (timestamp, value) to the (side, key) bucket containing ts.
  Status StoreTuple(int side, const Event& event);

  // Probes the other side's buckets for partners of `event` and emits joins.
  Status Probe(int side, const Event& event, Collector* out);

  std::string SideKey(int side, const Slice& key) const;
  Window BucketOf(int64_t timestamp) const;

  IntervalJoinConfig config_;
  int64_t bucket_ms_ = 1;
  int64_t reach_ms_ = 0;  // how long a bucket can still find partners
  std::unique_ptr<RmwState> state_;
  TimerService cleanup_timers_;
};

}  // namespace flowkv

#endif  // SRC_SPE_INTERVAL_JOIN_OPERATOR_H_
