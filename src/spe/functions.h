// User-facing operation interfaces (paper §2.1, §3.1). The aggregate-function
// interface a window operation implements determines its write pattern:
//  - AggregateFunction (incremental, associative+commutative)  => RMW
//  - ProcessWindowFunction (needs the full tuple list at trigger) => Append
#ifndef SRC_SPE_FUNCTIONS_H_
#define SRC_SPE_FUNCTIONS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/spe/event.h"
#include "src/spe/window.h"

namespace flowkv {

// Receives operator output. Implementations must tolerate being called from
// inside ProcessEvent and OnWatermark.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual Status Emit(const Event& event) = 0;
};

// Incremental aggregation over serialized accumulators (Flink's
// AggregateFunction). Accumulators are opaque bytes defined by the query.
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  virtual std::string CreateAccumulator() const = 0;

  // Folds one input value into the accumulator.
  virtual void Add(const Slice& value, std::string* accumulator) const = 0;

  // Produces the window result from the final accumulator.
  virtual std::string GetResult(const Slice& accumulator) const = 0;

  // Combines two accumulators (required when session windows merge).
  virtual std::string MergeAccumulators(const Slice& a, const Slice& b) const = 0;
};

// Full-window processing (Flink's ProcessWindowFunction): receives every
// tuple collected in the window. Used for non-associative/non-commutative
// aggregates (median, joins, top-k without incremental form).
class ProcessWindowFunction {
 public:
  virtual ~ProcessWindowFunction() = default;

  using EmitFn = std::function<Status(std::string value)>;

  // `values` is the complete list of tuple values appended to (key, window).
  virtual Status Process(const Slice& key, const Window& window,
                         const std::vector<std::string>& values, const EmitFn& emit) const = 0;
};

}  // namespace flowkv

#endif  // SRC_SPE_FUNCTIONS_H_
