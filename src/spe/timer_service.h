// Event-time timer service: the operator registers (time, key, window)
// timers; when the watermark advances past a timer's time the window fires.
// Supports deletion (session windows re-register on every merge) and an
// optional auxiliary window (the session "state window", which names where
// the merged window's state actually lives).
#ifndef SRC_SPE_TIMER_SERVICE_H_
#define SRC_SPE_TIMER_SERVICE_H_

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/spe/window.h"

namespace flowkv {

struct Timer {
  int64_t time = 0;
  std::string key;       // empty for per-window (aligned) timers
  Window window;         // the (merged) window that fires
  Window state_window;   // where its state lives (== window unless merged)

  auto Identity() const { return std::tie(time, key, window); }
  bool operator<(const Timer& other) const { return Identity() < other.Identity(); }
};

class TimerService {
 public:
  // Registers a timer; duplicate (time, key, window) registrations coalesce.
  void Register(const Timer& timer) { timers_.insert(timer); }

  void Delete(int64_t time, const std::string& key, const Window& window) {
    Timer probe;
    probe.time = time;
    probe.key = key;
    probe.window = window;
    timers_.erase(probe);
  }

  // Pops every timer with time <= watermark, in time order.
  std::vector<Timer> PopDue(int64_t watermark) {
    std::vector<Timer> due;
    auto it = timers_.begin();
    while (it != timers_.end() && it->time <= watermark) {
      due.push_back(*it);
      it = timers_.erase(it);
    }
    return due;
  }

  // Drains everything (end-of-stream flush).
  std::vector<Timer> PopAll() {
    std::vector<Timer> all(timers_.begin(), timers_.end());
    timers_.clear();
    return all;
  }

  size_t size() const { return timers_.size(); }

 private:
  std::set<Timer> timers_;
};

}  // namespace flowkv

#endif  // SRC_SPE_TIMER_SERVICE_H_
