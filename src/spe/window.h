// Windows and window assigners (paper §2.1). A window is the half-open
// event-time interval [start, end); assigners map a tuple timestamp to the
// set of windows it belongs to. Window functions determine the read
// alignment: tumbling/sliding are Aligned, session/count are Unaligned,
// custom assigners are conservatively treated as Unaligned (§3.1).
#ifndef SRC_SPE_WINDOW_H_
#define SRC_SPE_WINDOW_H_

#include <cstdint>
#include <limits>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/slice.h"

namespace flowkv {

struct Window {
  int64_t start = 0;
  int64_t end = 0;  // exclusive

  Window() = default;
  Window(int64_t s, int64_t e) : start(s), end(e) {}

  // The single global window used by global window functions (NEXMark Q12).
  static Window Global() {
    return Window(std::numeric_limits<int64_t>::min() / 4,
                  std::numeric_limits<int64_t>::max() / 4);
  }

  // Latest timestamp that belongs to this window; the event-time timer fires
  // when the watermark passes this.
  int64_t max_timestamp() const { return end - 1; }

  bool Intersects(const Window& other) const {
    return start <= other.end && other.start <= end;
  }

  Window CoveringUnion(const Window& other) const {
    return Window(std::min(start, other.start), std::max(end, other.end));
  }

  bool operator==(const Window& other) const = default;
  auto operator<=>(const Window& other) const = default;

  std::string ToString() const {
    return "[" + std::to_string(start) + "," + std::to_string(end) + ")";
  }
};

struct WindowHash {
  size_t operator()(const Window& w) const {
    return static_cast<size_t>(
        CombineHash64(static_cast<uint64_t>(w.start), static_cast<uint64_t>(w.end)));
  }
};

// Fixed-width on-disk/composite-key encoding (16 bytes, big-endian-free:
// callers needing sort order use OrderPreservingEncode below).
void EncodeWindow(std::string* dst, const Window& w);
bool DecodeWindow(Slice* input, Window* w);

// Big-endian, sign-flipped encoding so lexicographic byte order equals
// (start, end) numeric order — needed by the LSM backend's window-prefixed
// composite keys.
void OrderPreservingEncode64(std::string* dst, int64_t v);
int64_t OrderPreservingDecode64(const char* src);

enum class WindowKind {
  kTumbling,
  kSliding,
  kSession,
  kGlobal,
  kCount,
  kCustom,
};

// Read alignment of a window kind (paper §2.1 / §3.1).
bool IsAlignedRead(WindowKind kind);

// User-supplied access-pattern annotation for custom window functions
// (paper §8: "@AlignedRead / @UnalignedRead" style hints). kDefault keeps
// the conservative built-in mapping (custom windows => Unaligned).
enum class ReadAlignmentHint {
  kDefault,
  kAligned,
  kUnaligned,
};

class WindowAssigner {
 public:
  virtual ~WindowAssigner() = default;

  virtual WindowKind kind() const = 0;

  // Appends the windows containing `timestamp` to `out`. Session assigners
  // return the single-point proto-window [t, t+gap); the operator merges it
  // into the active session set.
  virtual void AssignWindows(int64_t timestamp, std::vector<Window>* out) const = 0;

  // True when windows of this assigner can grow/merge after creation
  // (session semantics).
  virtual bool RequiresMerging() const { return false; }

  // Session gap, when meaningful (used by FlowKV's session ETT predictor).
  virtual int64_t session_gap() const { return 0; }

  // Window length, when meaningful.
  virtual int64_t size() const { return 0; }

  // Access-pattern annotation; pre-defined assigners use the default mapping,
  // custom assigners may declare theirs (paper §8).
  virtual ReadAlignmentHint alignment_hint() const { return ReadAlignmentHint::kDefault; }
};

// A user-defined window function: windows come from an arbitrary callback.
// FlowKV cannot see inside it, so without a hint it conservatively gets the
// Unaligned pattern and no trigger prediction; the user may annotate the
// read alignment and supply an ETT predictor (via FlowKvStore's predictor
// override) to recover the specialized behavior (paper §8).
class CustomWindowAssigner : public WindowAssigner {
 public:
  using AssignFn = std::function<void(int64_t timestamp, std::vector<Window>*)>;

  explicit CustomWindowAssigner(AssignFn assign,
                                ReadAlignmentHint hint = ReadAlignmentHint::kDefault)
      : assign_(std::move(assign)), hint_(hint) {}

  WindowKind kind() const override { return WindowKind::kCustom; }
  void AssignWindows(int64_t timestamp, std::vector<Window>* out) const override {
    assign_(timestamp, out);
  }
  ReadAlignmentHint alignment_hint() const override { return hint_; }

 private:
  AssignFn assign_;
  ReadAlignmentHint hint_;
};

class TumblingWindowAssigner : public WindowAssigner {
 public:
  explicit TumblingWindowAssigner(int64_t size_ms) : size_(size_ms) {}

  WindowKind kind() const override { return WindowKind::kTumbling; }
  int64_t size() const override { return size_; }

  void AssignWindows(int64_t timestamp, std::vector<Window>* out) const override {
    int64_t start = timestamp - Modulo(timestamp, size_);
    out->emplace_back(start, start + size_);
  }

 private:
  static int64_t Modulo(int64_t x, int64_t m) {
    int64_t r = x % m;
    return r < 0 ? r + m : r;
  }

  int64_t size_;
};

class SlidingWindowAssigner : public WindowAssigner {
 public:
  SlidingWindowAssigner(int64_t size_ms, int64_t slide_ms) : size_(size_ms), slide_(slide_ms) {}

  WindowKind kind() const override { return WindowKind::kSliding; }
  int64_t size() const override { return size_; }
  int64_t slide() const { return slide_; }

  void AssignWindows(int64_t timestamp, std::vector<Window>* out) const override {
    // Last window start <= timestamp, then step back by slide while covering.
    int64_t last_start = timestamp - Modulo(timestamp, slide_);
    for (int64_t start = last_start; start > timestamp - size_; start -= slide_) {
      out->emplace_back(start, start + size_);
    }
  }

 private:
  static int64_t Modulo(int64_t x, int64_t m) {
    int64_t r = x % m;
    return r < 0 ? r + m : r;
  }

  int64_t size_;
  int64_t slide_;
};

class SessionWindowAssigner : public WindowAssigner {
 public:
  explicit SessionWindowAssigner(int64_t gap_ms) : gap_(gap_ms) {}

  WindowKind kind() const override { return WindowKind::kSession; }
  bool RequiresMerging() const override { return true; }
  int64_t session_gap() const override { return gap_; }

  void AssignWindows(int64_t timestamp, std::vector<Window>* out) const override {
    out->emplace_back(timestamp, timestamp + gap_);
  }

 private:
  int64_t gap_;
};

class GlobalWindowAssigner : public WindowAssigner {
 public:
  WindowKind kind() const override { return WindowKind::kGlobal; }

  void AssignWindows(int64_t timestamp, std::vector<Window>* out) const override {
    out->push_back(Window::Global());
  }
};

// Count windows live in "count space": the operator tracks a per-key element
// counter and maps element n to window [i*count, (i+1)*count). Trigger time
// is data-dependent, hence Unaligned and unpredictable for prefetching.
class CountWindowAssigner : public WindowAssigner {
 public:
  explicit CountWindowAssigner(int64_t count) : count_(count) {}

  WindowKind kind() const override { return WindowKind::kCount; }
  int64_t size() const override { return count_; }

  void AssignWindows(int64_t timestamp, std::vector<Window>* out) const override {
    // Not timestamp-driven; the operator assigns count windows itself.
  }

 private:
  int64_t count_;
};

}  // namespace flowkv

#endif  // SRC_SPE_WINDOW_H_
