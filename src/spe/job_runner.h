// JobRunner: executes a query across N share-nothing workers, one thread per
// worker, each with its own source partition, pipeline and store instances
// (the paper's physical plan: states are partitioned by key and accessed by
// a single-threaded worker, §2.1/Fig. 1).
//
// Two execution modes:
//  - throughput: feed the partition as fast as possible, measure wall time
//    (paper §6.1 "time taken to process fixed-sized streaming datasets");
//  - fixed-rate: pace tuples against the wall clock and record per-result
//    latency relative to each tuple's ideal arrival time — the backpressure-
//    sensitive tail-latency methodology of §6.2. A worker whose processing
//    lag exceeds `fail_lag_ms` is declared failed ("fails to handle higher
//    tuple rates").
#ifndef SRC_SPE_JOB_RUNNER_H_
#define SRC_SPE_JOB_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/spe/pipeline.h"

namespace flowkv {

// Per-worker event source. Events must be in non-decreasing timestamp order
// (bounded disorder is tolerated up to the configured lateness).
class SourceIterator {
 public:
  virtual ~SourceIterator() = default;
  // Returns false at end of stream.
  virtual bool Next(Event* event) = 0;
};

struct JobConfig {
  int workers = 1;
  // Emit a watermark after this many events.
  int watermark_interval_events = 256;
  // Watermark = max_seen_timestamp - allowed_lateness.
  int64_t allowed_lateness_ms = 0;

  // Abort the worker with ResourceExhausted("did not finish") once it has
  // run this long (seconds); 0 = no limit. Reproduces the paper's DNF bars
  // (Faster on append workloads, Fig. 4) at library scale.
  double max_wall_seconds = 0;

  // Fixed-rate mode (events/second per worker); 0 = throughput mode.
  double target_rate = 0;
  // Event-time milliseconds that one wall-clock second represents in
  // fixed-rate mode; defaults to event-time spacing * target_rate.
  // (Computed internally; sources define event-time spacing.)
  // Fail the worker if it falls this far behind its ideal schedule.
  int64_t fail_lag_ms = 10'000;

  // Results emitted before this many input events are excluded from the
  // latency histogram (the paper likewise measures only after a warm-up of
  // one window length).
  uint64_t latency_warmup_events = 0;

  // --- Observability (src/obs/) ---
  // When non-empty, a PeriodicReporter thread samples every worker on this
  // interval and appends one JSONL object per worker per tick to the file.
  std::string metrics_out_path;
  int metrics_interval_ms = 100;
  // When non-empty, tracing is enabled for the duration of the job and a
  // Chrome-trace JSON file (loadable in Perfetto) is written here after the
  // workers join. Empty (default) keeps the trace probes to a single
  // relaxed-load branch.
  std::string trace_out_path;
  // Per-thread ring capacity in events; oldest events are overwritten.
  size_t trace_ring_capacity = 64 * 1024;
};

struct WorkerReport {
  Status status;
  uint64_t events_in = 0;
  uint64_t results_out = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;  // thread CPU time of this worker
  StoreStats store_stats;
  Histogram latency_ms;  // fixed-rate mode only
};

struct JobReport {
  Status status;  // first failure, or OK
  std::vector<WorkerReport> workers;

  uint64_t TotalEventsIn() const;
  double TotalCpuSeconds() const;
  uint64_t TotalResults() const;
  double MaxWallSeconds() const;
  // Aggregate throughput: total events / slowest worker's wall time.
  double Throughput() const;
  StoreStats AggregateStoreStats() const;
  Histogram AggregateLatency() const;
};

using SourceFactory = std::function<std::unique_ptr<SourceIterator>(int worker)>;
// Builds the worker's pipeline (operators only; Open is done by the runner).
using PipelineFactory = std::function<Status(int worker, Pipeline* pipeline)>;

// Runs the job to completion. `backend_factory` provides per-operator state.
JobReport RunJob(const JobConfig& config, const SourceFactory& source_factory,
                 const PipelineFactory& pipeline_factory, StateBackendFactory* backend_factory);

}  // namespace flowkv

#endif  // SRC_SPE_JOB_RUNNER_H_
