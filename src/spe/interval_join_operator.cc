#include "src/spe/interval_join_operator.h"

#include <algorithm>
#include <cassert>

#include "src/common/coding.h"

namespace flowkv {

namespace {

// Bucket value encoding: repeated [varsigned timestamp][len-prefixed value].
void AppendTuple(std::string* bucket, int64_t timestamp, const Slice& value) {
  PutVarsigned64(bucket, timestamp);
  PutLengthPrefixed(bucket, value);
}

bool NextTuple(Slice* input, int64_t* timestamp, Slice* value) {
  if (input->empty()) {
    return false;
  }
  return GetVarsigned64(input, timestamp) && GetLengthPrefixed(input, value);
}

Event DefaultJoin(const Event& left, const Event& right) {
  return Event(left.key, left.value + "|" + right.value,
               std::max(left.timestamp, right.timestamp));
}

}  // namespace

IntervalJoinOperator::IntervalJoinOperator(IntervalJoinConfig config)
    : config_(std::move(config)) {
  assert(config_.side_of != nullptr);
  assert(config_.lower_bound_ms <= config_.upper_bound_ms);
  if (config_.join == nullptr) {
    config_.join = DefaultJoin;
  }
  const int64_t span = config_.upper_bound_ms - config_.lower_bound_ms;
  bucket_ms_ = config_.bucket_ms > 0 ? config_.bucket_ms : std::max<int64_t>(span, 1);
  reach_ms_ =
      std::max(std::abs(config_.lower_bound_ms), std::abs(config_.upper_bound_ms)) + 1;
}

Status IntervalJoinOperator::Open(StateBackend* backend) {
  if (backend == nullptr) {
    return Status::InvalidArgument("interval join requires a state backend");
  }
  OperatorStateSpec spec;
  spec.name = config_.name;
  spec.window_kind = WindowKind::kCustom;  // buckets are custom windows
  spec.incremental = true;                 // read-modify-write per tuple
  return backend->CreateRmw(spec, &state_);
}

std::string IntervalJoinOperator::SideKey(int side, const Slice& key) const {
  std::string out;
  out.reserve(key.size() + 1);
  out.push_back(static_cast<char>(side));
  out.append(key.data(), key.size());
  return out;
}

Window IntervalJoinOperator::BucketOf(int64_t timestamp) const {
  int64_t r = timestamp % bucket_ms_;
  if (r < 0) {
    r += bucket_ms_;
  }
  const int64_t start = timestamp - r;
  return Window(start, start + bucket_ms_);
}

Status IntervalJoinOperator::StoreTuple(int side, const Event& event) {
  const std::string sk = SideKey(side, event.key);
  const Window bucket = BucketOf(event.timestamp);
  std::string encoded;
  Status s = state_->Get(sk, bucket, &encoded);
  if (!s.ok() && !s.IsNotFound()) {
    return s;
  }
  const bool fresh = s.IsNotFound();
  AppendTuple(&encoded, event.timestamp, event.value);
  FLOWKV_RETURN_IF_ERROR(state_->Put(sk, bucket, encoded));
  if (fresh) {
    // First tuple in this bucket: schedule its garbage collection for when
    // no future tuple could join with it any more.
    Timer timer;
    timer.time = bucket.max_timestamp() + reach_ms_;
    timer.key = sk;
    timer.window = bucket;
    timer.state_window = bucket;
    cleanup_timers_.Register(timer);
  }
  return Status::Ok();
}

Status IntervalJoinOperator::Probe(int side, const Event& event, Collector* out) {
  // For a left tuple at ta, partners live in [ta+lower, ta+upper]; for a
  // right tuple at tb, partners live in [tb-upper, tb-lower].
  const int other = 1 - side;
  const int64_t from = side == 0 ? event.timestamp + config_.lower_bound_ms
                                 : event.timestamp - config_.upper_bound_ms;
  const int64_t to = side == 0 ? event.timestamp + config_.upper_bound_ms
                               : event.timestamp - config_.lower_bound_ms;
  const std::string other_key = SideKey(other, event.key);

  for (Window bucket = BucketOf(from); bucket.start <= to;
       bucket = Window(bucket.start + bucket_ms_, bucket.end + bucket_ms_)) {
    std::string encoded;
    Status s = state_->Get(other_key, bucket, &encoded);
    if (s.IsNotFound()) {
      continue;
    }
    FLOWKV_RETURN_IF_ERROR(s);
    Slice input(encoded);
    int64_t partner_ts;
    Slice partner_value;
    while (NextTuple(&input, &partner_ts, &partner_value)) {
      const int64_t delta = side == 0 ? partner_ts - event.timestamp
                                      : event.timestamp - partner_ts;
      if (delta < config_.lower_bound_ms || delta > config_.upper_bound_ms) {
        continue;
      }
      Event partner(event.key, partner_value.ToString(), partner_ts);
      const Event& left = side == 0 ? event : partner;
      const Event& right = side == 0 ? partner : event;
      FLOWKV_RETURN_IF_ERROR(out->Emit(config_.join(left, right)));
    }
  }
  return Status::Ok();
}

Status IntervalJoinOperator::ProcessEvent(const Event& event, Collector* out) {
  const int side = config_.side_of(event);
  if (side != 0 && side != 1) {
    return Status::InvalidArgument("side_of must return 0 or 1");
  }
  // Probe first, then store: a tuple never joins with itself and pairs are
  // emitted exactly once (by whichever element arrives second).
  FLOWKV_RETURN_IF_ERROR(Probe(side, event, out));
  return StoreTuple(side, event);
}

Status IntervalJoinOperator::OnWatermark(int64_t watermark, Collector* out) {
  for (const Timer& timer : cleanup_timers_.PopDue(watermark)) {
    FLOWKV_RETURN_IF_ERROR(state_->Remove(timer.key, timer.window));
  }
  return Status::Ok();
}

Status IntervalJoinOperator::Finish(Collector* out) {
  for (const Timer& timer : cleanup_timers_.PopAll()) {
    FLOWKV_RETURN_IF_ERROR(state_->Remove(timer.key, timer.window));
  }
  return Status::Ok();
}

}  // namespace flowkv
