// The unit of data flowing through the engine: a timestamped key-value tuple
// e = (k, v, t) (paper §2.1). Keys and values are opaque bytes; queries
// define their own encodings on top.
#ifndef SRC_SPE_EVENT_H_
#define SRC_SPE_EVENT_H_

#include <cstdint>
#include <string>
#include <utility>

namespace flowkv {

struct Event {
  std::string key;
  std::string value;
  int64_t timestamp = 0;  // event time, milliseconds

  Event() = default;
  Event(std::string k, std::string v, int64_t t)
      : key(std::move(k)), value(std::move(v)), timestamp(t) {}

  bool operator==(const Event& other) const = default;
};

}  // namespace flowkv

#endif  // SRC_SPE_EVENT_H_
