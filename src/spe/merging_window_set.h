// Tracks active (possibly merging) windows per key, Flink-style. Session
// assigners produce a proto-window per tuple; AddWindow folds it into the
// existing actives, reporting which windows merged away (so their timers and
// state can be cleaned up) and which window carries the state.
//
// FlowKV's AUR store keys state by the *initial* window boundary (§4.2): a
// session that grows keeps its first boundary as the state label. This set
// maintains exactly that mapping (window -> state_window).
#ifndef SRC_SPE_MERGING_WINDOW_SET_H_
#define SRC_SPE_MERGING_WINDOW_SET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/slice.h"
#include "src/spe/window.h"

namespace flowkv {

class MergingWindowSet {
 public:
  struct ActiveWindow {
    Window window;        // current (merged) extent
    Window state_window;  // initial boundary labeling the state
  };

  struct MergeResult {
    Window merged;                             // resulting extent
    Window state_window;                       // where the state lives now
    std::vector<Window> absorbed_state_windows;  // state labels to fold into state_window
    std::vector<Window> replaced_windows;      // old extents whose timers die
  };

  // Folds `proto` into the active set for `key`.
  MergeResult AddWindow(const Slice& key, const Window& proto);

  // Drops the active window with extent `window` (after it fired).
  void Retire(const Slice& key, const Window& window);

  // Number of active windows for the key (testing/introspection).
  size_t ActiveCount(const Slice& key) const;
  size_t TotalActive() const;

 private:
  std::unordered_map<std::string, std::vector<ActiveWindow>> actives_;
};

}  // namespace flowkv

#endif  // SRC_SPE_MERGING_WINDOW_SET_H_
