// Operator interface and the stateless operators (map/filter/flat-map) used
// to build query pipelines around the stateful window operator.
#ifndef SRC_SPE_OPERATOR_H_
#define SRC_SPE_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/spe/event.h"
#include "src/spe/functions.h"
#include "src/spe/state.h"

namespace flowkv {

class Operator {
 public:
  virtual ~Operator() = default;

  virtual const std::string& name() const = 0;
  virtual bool IsStateful() const { return false; }

  // Binds state handles. Called once before any event; `backend` is null for
  // stateless operators.
  virtual Status Open(StateBackend* backend) { return Status::Ok(); }

  virtual Status ProcessEvent(const Event& event, Collector* out) = 0;

  // The watermark guarantees no further events with timestamp <= watermark.
  // Fires due windows; implementations need not forward the watermark (the
  // pipeline advances every operator in topological order).
  virtual Status OnWatermark(int64_t watermark, Collector* out) { return Status::Ok(); }

  // End of stream: flush all remaining state.
  virtual Status Finish(Collector* out) { return Status::Ok(); }
};

// Emits fn(event) for every input; dropping is expressed by FlatMapOperator.
class MapOperator : public Operator {
 public:
  using Fn = std::function<Event(const Event&)>;

  MapOperator(std::string name, Fn fn) : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const override { return name_; }
  Status ProcessEvent(const Event& event, Collector* out) override {
    return out->Emit(fn_(event));
  }

 private:
  std::string name_;
  Fn fn_;
};

// Forwards events satisfying the predicate.
class FilterOperator : public Operator {
 public:
  using Fn = std::function<bool(const Event&)>;

  FilterOperator(std::string name, Fn fn) : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const override { return name_; }
  Status ProcessEvent(const Event& event, Collector* out) override {
    if (fn_(event)) {
      return out->Emit(event);
    }
    return Status::Ok();
  }

 private:
  std::string name_;
  Fn fn_;
};

// General 0..n transformation.
class FlatMapOperator : public Operator {
 public:
  using Fn = std::function<void(const Event&, std::vector<Event>*)>;

  FlatMapOperator(std::string name, Fn fn) : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const override { return name_; }
  Status ProcessEvent(const Event& event, Collector* out) override {
    scratch_.clear();
    fn_(event, &scratch_);
    for (const Event& e : scratch_) {
      FLOWKV_RETURN_IF_ERROR(out->Emit(e));
    }
    return Status::Ok();
  }

 private:
  std::string name_;
  Fn fn_;
  std::vector<Event> scratch_;
};

}  // namespace flowkv

#endif  // SRC_SPE_OPERATOR_H_
