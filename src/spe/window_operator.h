// The stateful window operator: assigns tuples to windows, maintains window
// state through one of the three pattern-specific state handles, registers
// event-time timers, and fires windows when the watermark passes their end.
//
// Pattern selection (paper §3.1): an incremental AggregateFunction means RMW;
// a ProcessWindowFunction means Append, split into Aligned/Unaligned by the
// window assigner's read alignment.
#ifndef SRC_SPE_WINDOW_OPERATOR_H_
#define SRC_SPE_WINDOW_OPERATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/spe/merging_window_set.h"
#include "src/spe/operator.h"
#include "src/spe/timer_service.h"

namespace flowkv {

struct WindowOperatorConfig {
  std::string name;
  std::shared_ptr<WindowAssigner> assigner;
  // Exactly one of the two must be set.
  std::shared_ptr<AggregateFunction> aggregate;
  std::shared_ptr<ProcessWindowFunction> process;
  // Out-of-order tolerance: an event is late (and dropped) once the
  // watermark has passed every window it could belong to plus this slack.
  int64_t allowed_lateness_ms = 0;
};

class WindowOperator : public Operator {
 public:
  explicit WindowOperator(WindowOperatorConfig config);

  const std::string& name() const override { return config_.name; }
  bool IsStateful() const override { return true; }

  StorePattern pattern() const { return pattern_; }
  OperatorStateSpec state_spec() const;

  Status Open(StateBackend* backend) override;
  Status ProcessEvent(const Event& event, Collector* out) override;
  Status OnWatermark(int64_t watermark, Collector* out) override;
  Status Finish(Collector* out) override;

  // Events dropped because their windows had already fired (late data).
  int64_t late_events_dropped() const { return late_events_dropped_; }

 private:
  // Per-pattern element handling.
  Status ProcessRmw(const Event& event, Collector* out);
  Status ProcessAppendAligned(const Event& event);
  Status ProcessAppendUnaligned(const Event& event, Collector* out);

  // Window assignment for count windows (per-key element counters).
  Window AssignCountWindow(const Slice& key, bool* window_complete);

  // Session bookkeeping shared by the RMW and AUR paths. Fills the merge
  // result, fixes up timers, and (for RMW) folds absorbed accumulators.
  Status MergeSessionWindows(const Event& event, MergingWindowSet::MergeResult* merge);

  Status FireTimer(const Timer& timer, Collector* out);
  Status FireAligned(const Window& w, Collector* out);
  Status FireUnaligned(const Slice& key, const Window& window, const Window& state_window,
                       Collector* out);
  Status FireRmw(const Slice& key, const Window& state_window, const Window& result_window,
                 Collector* out);

  Status EmitProcessed(const Slice& key, const Window& window,
                       const std::vector<std::string>& values, Collector* out);

  WindowOperatorConfig config_;
  StorePattern pattern_;

  std::unique_ptr<AppendAlignedState> aar_;
  std::unique_ptr<AppendUnalignedState> aur_;
  std::unique_ptr<RmwState> rmw_;

  // True when every window of the event has already been fired and dropped.
  bool IsLate(const Event& event) const;

  TimerService timers_;
  MergingWindowSet merging_windows_;
  int64_t current_watermark_ = INT64_MIN;
  int64_t late_events_dropped_ = 0;
  std::unordered_map<std::string, int64_t> count_window_counters_;
  std::vector<Window> window_scratch_;
};

}  // namespace flowkv

#endif  // SRC_SPE_WINDOW_OPERATOR_H_
