#include "src/spe/pipeline.h"

#include <cstdlib>

#include "src/common/env.h"
#include "src/common/file.h"

namespace flowkv {

namespace {

constexpr char kCurrentName[] = "CURRENT";
constexpr char kEpochPrefix[] = "epoch_";

}  // namespace

Status Pipeline::Open(StateBackendFactory* factory, int worker, Collector* sink) {
  if (opened_) {
    return Status::FailedPrecondition("pipeline already opened");
  }
  sink_ = sink;
  collectors_.clear();
  backends_.clear();
  for (size_t i = 0; i < ops_.size(); ++i) {
    collectors_.push_back(std::make_unique<StageCollector>(this, i + 1));
    std::unique_ptr<StateBackend> backend;
    if (ops_[i]->IsStateful()) {
      if (factory == nullptr) {
        return Status::InvalidArgument("stateful pipeline requires a backend factory");
      }
      FLOWKV_RETURN_IF_ERROR(factory->CreateBackend(worker, ops_[i]->name(), &backend));
    }
    FLOWKV_RETURN_IF_ERROR(ops_[i]->Open(backend.get()));
    backends_.push_back(std::move(backend));
  }
  opened_ = true;
  return Status::Ok();
}

Status Pipeline::Feed(size_t index, const Event& event) {
  if (index == ops_.size()) {
    return sink_->Emit(event);
  }
  return ops_[index]->ProcessEvent(event, collectors_[index].get());
}

Status Pipeline::Process(const Event& event) { return Feed(0, event); }

Status Pipeline::AdvanceWatermark(int64_t watermark) {
  for (size_t i = 0; i < ops_.size(); ++i) {
    FLOWKV_RETURN_IF_ERROR(ops_[i]->OnWatermark(watermark, collectors_[i].get()));
  }
  return Status::Ok();
}

Status Pipeline::Finish() {
  for (size_t i = 0; i < ops_.size(); ++i) {
    FLOWKV_RETURN_IF_ERROR(ops_[i]->Finish(collectors_[i].get()));
  }
  return Status::Ok();
}

Status Pipeline::Checkpoint(const std::string& checkpoint_dir) const {
  FLOWKV_RETURN_IF_ERROR(CreateDirs(checkpoint_dir));
  // Next epoch = committed epoch + 1, derived from CURRENT so the sequence
  // survives process restarts without any in-memory counter.
  uint64_t epoch = 0;
  std::string current;
  const std::string current_path = JoinPath(checkpoint_dir, kCurrentName);
  if (FileExists(current_path) && ReadFileToString(current_path, &current).ok() &&
      current.rfind(kEpochPrefix, 0) == 0) {
    epoch = std::strtoull(current.c_str() + sizeof(kEpochPrefix) - 1, nullptr, 10) + 1;
  }
  const std::string epoch_name = kEpochPrefix + std::to_string(epoch);
  const std::string staged = JoinPath(checkpoint_dir, epoch_name);
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i] != nullptr) {
      FLOWKV_RETURN_IF_ERROR(
          backends_[i]->CheckpointTo(JoinPath(staged, "op" + std::to_string(i))));
    }
  }
  // Commit point: CURRENT flips to the new epoch only after every operator's
  // checkpoint is durable.
  return WriteFileDurably(current_path, epoch_name);
}

Status Pipeline::LatestCheckpoint(const std::string& checkpoint_dir, std::string* epoch_dir) {
  const std::string current_path = JoinPath(checkpoint_dir, kCurrentName);
  if (!FileExists(current_path)) {
    return Status::NotFound("no committed pipeline checkpoint in " + checkpoint_dir);
  }
  std::string current;
  FLOWKV_RETURN_IF_ERROR(ReadFileToString(current_path, &current));
  if (current.rfind(kEpochPrefix, 0) != 0 || current.find('/') != std::string::npos) {
    return Status::Corruption("malformed CURRENT in " + checkpoint_dir);
  }
  const std::string resolved = JoinPath(checkpoint_dir, current);
  if (!FileExists(resolved)) {
    return Status::Corruption("CURRENT points at a missing checkpoint: " + resolved);
  }
  *epoch_dir = resolved;
  return Status::Ok();
}

StoreStats Pipeline::GatherStats() const {
  StoreStats total;
  for (const auto& backend : backends_) {
    if (backend != nullptr) {
      total.MergeFrom(backend->GatherStats());
    }
  }
  return total;
}

}  // namespace flowkv
