#include "src/spe/pipeline.h"

namespace flowkv {

Status Pipeline::Open(StateBackendFactory* factory, int worker, Collector* sink) {
  if (opened_) {
    return Status::FailedPrecondition("pipeline already opened");
  }
  sink_ = sink;
  collectors_.clear();
  backends_.clear();
  for (size_t i = 0; i < ops_.size(); ++i) {
    collectors_.push_back(std::make_unique<StageCollector>(this, i + 1));
    std::unique_ptr<StateBackend> backend;
    if (ops_[i]->IsStateful()) {
      if (factory == nullptr) {
        return Status::InvalidArgument("stateful pipeline requires a backend factory");
      }
      FLOWKV_RETURN_IF_ERROR(factory->CreateBackend(worker, ops_[i]->name(), &backend));
    }
    FLOWKV_RETURN_IF_ERROR(ops_[i]->Open(backend.get()));
    backends_.push_back(std::move(backend));
  }
  opened_ = true;
  return Status::Ok();
}

Status Pipeline::Feed(size_t index, const Event& event) {
  if (index == ops_.size()) {
    return sink_->Emit(event);
  }
  return ops_[index]->ProcessEvent(event, collectors_[index].get());
}

Status Pipeline::Process(const Event& event) { return Feed(0, event); }

Status Pipeline::AdvanceWatermark(int64_t watermark) {
  for (size_t i = 0; i < ops_.size(); ++i) {
    FLOWKV_RETURN_IF_ERROR(ops_[i]->OnWatermark(watermark, collectors_[i].get()));
  }
  return Status::Ok();
}

Status Pipeline::Finish() {
  for (size_t i = 0; i < ops_.size(); ++i) {
    FLOWKV_RETURN_IF_ERROR(ops_[i]->Finish(collectors_[i].get()));
  }
  return Status::Ok();
}

Status Pipeline::Checkpoint(const std::string& checkpoint_dir) const {
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i] != nullptr) {
      FLOWKV_RETURN_IF_ERROR(backends_[i]->CheckpointTo(
          checkpoint_dir + "/op" + std::to_string(i)));
    }
  }
  return Status::Ok();
}

StoreStats Pipeline::GatherStats() const {
  StoreStats total;
  for (const auto& backend : backends_) {
    if (backend != nullptr) {
      total.MergeFrom(backend->GatherStats());
    }
  }
  return total;
}

}  // namespace flowkv
