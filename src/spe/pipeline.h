// A linear chain of operators with a terminal sink — the physical plan of
// one worker's share of a query. Watermarks advance operators in topological
// order so that window results emitted by an upstream fire are processed by
// downstream operators before their own windows fire (consecutive window
// operations, e.g. NEXMark Q5).
#ifndef SRC_SPE_PIPELINE_H_
#define SRC_SPE_PIPELINE_H_

#include <memory>
#include <vector>

#include "src/spe/operator.h"

namespace flowkv {

class Pipeline {
 public:
  Pipeline() = default;

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  void AddOperator(std::unique_ptr<Operator> op) { ops_.push_back(std::move(op)); }

  // Binds every stateful operator to a backend created by `factory` and
  // wires internal collectors. `sink` receives final outputs and must
  // outlive the pipeline. Call exactly once before feeding data.
  Status Open(StateBackendFactory* factory, int worker, Collector* sink);

  Status Process(const Event& event);
  Status AdvanceWatermark(int64_t watermark);
  Status Finish();

  // Snapshots the state of every stateful operator (paper §8): with FlowKV
  // backends this flushes the write buffers and copies the on-disk logs, so
  // the directory can be uploaded to reliable storage asynchronously.
  //
  // The snapshot is staged into checkpoint_dir/epoch_<n>/op<i>/ and committed
  // by durably rewriting checkpoint_dir/CURRENT, so a crash mid-checkpoint
  // leaves CURRENT pointing at the previous complete epoch.
  Status Checkpoint(const std::string& checkpoint_dir) const;

  // Resolves the epoch directory named by checkpoint_dir/CURRENT. NotFound
  // when no checkpoint has ever committed there.
  static Status LatestCheckpoint(const std::string& checkpoint_dir, std::string* epoch_dir);

  // Sums operation stats over all backends of this pipeline.
  StoreStats GatherStats() const;

  size_t operator_count() const { return ops_.size(); }

 private:
  // Feeds an event into operator `index` (== ops_.size() routes to the sink).
  Status Feed(size_t index, const Event& event);

  class StageCollector : public Collector {
   public:
    StageCollector(Pipeline* pipeline, size_t next_index)
        : pipeline_(pipeline), next_index_(next_index) {}
    Status Emit(const Event& event) override { return pipeline_->Feed(next_index_, event); }

   private:
    Pipeline* pipeline_;
    size_t next_index_;
  };

  std::vector<std::unique_ptr<Operator>> ops_;
  std::vector<std::unique_ptr<StageCollector>> collectors_;  // one per operator
  std::vector<std::unique_ptr<StateBackend>> backends_;      // parallel to ops_ (may hold null)
  Collector* sink_ = nullptr;
  bool opened_ = false;
};

}  // namespace flowkv

#endif  // SRC_SPE_PIPELINE_H_
