#include "src/spe/window_operator.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace flowkv {

namespace {
// Count windows live in count space; their firing is data-driven, so their
// watermark timers are parked at a time no watermark reaches (end-of-stream
// Finish() still drains them).
constexpr int64_t kNeverTimestamp = std::numeric_limits<int64_t>::max() / 2;

int64_t TimerTimeFor(WindowKind kind, const Window& w) {
  return kind == WindowKind::kCount ? kNeverTimestamp : w.max_timestamp();
}
}  // namespace

WindowOperator::WindowOperator(WindowOperatorConfig config) : config_(std::move(config)) {
  assert(config_.assigner != nullptr);
  assert((config_.aggregate != nullptr) != (config_.process != nullptr));
  pattern_ = ClassifyPattern(config_.aggregate != nullptr, config_.assigner->kind(),
                             config_.assigner->alignment_hint());
}

OperatorStateSpec WindowOperator::state_spec() const {
  OperatorStateSpec spec;
  spec.name = config_.name;
  spec.window_kind = config_.assigner->kind();
  spec.incremental = config_.aggregate != nullptr;
  spec.window_size_ms = config_.assigner->size();
  spec.session_gap_ms = config_.assigner->session_gap();
  spec.alignment_hint = config_.assigner->alignment_hint();
  return spec;
}

Status WindowOperator::Open(StateBackend* backend) {
  if (backend == nullptr) {
    return Status::InvalidArgument("window operator requires a state backend");
  }
  const OperatorStateSpec spec = state_spec();
  switch (pattern_) {
    case StorePattern::kAppendAligned:
      return backend->CreateAppendAligned(spec, &aar_);
    case StorePattern::kAppendUnaligned:
      return backend->CreateAppendUnaligned(spec, &aur_);
    case StorePattern::kReadModifyWrite:
      return backend->CreateRmw(spec, &rmw_);
  }
  return Status::Internal("unknown pattern");
}

bool WindowOperator::IsLate(const Event& event) const {
  if (current_watermark_ == INT64_MIN) {
    return false;
  }
  const WindowKind kind = config_.assigner->kind();
  if (kind == WindowKind::kCount || kind == WindowKind::kGlobal) {
    return false;  // not time-triggered
  }
  // Latest window an event at this timestamp can belong to ends no earlier
  // than the proto/assigned windows' maximum end; sessions can only extend
  // forward from the timestamp, so [t, t+gap) is the bound.
  std::vector<Window> windows;
  config_.assigner->AssignWindows(event.timestamp, &windows);
  int64_t latest_end = INT64_MIN;
  for (const Window& w : windows) {
    latest_end = std::max(latest_end, w.max_timestamp());
  }
  return latest_end + config_.allowed_lateness_ms < current_watermark_;
}

Status WindowOperator::ProcessEvent(const Event& event, Collector* out) {
  if (IsLate(event)) {
    ++late_events_dropped_;
    return Status::Ok();
  }
  switch (pattern_) {
    case StorePattern::kAppendAligned:
      return ProcessAppendAligned(event);
    case StorePattern::kAppendUnaligned:
      return ProcessAppendUnaligned(event, out);
    case StorePattern::kReadModifyWrite:
      return ProcessRmw(event, out);
  }
  return Status::Internal("unknown pattern");
}

Window WindowOperator::AssignCountWindow(const Slice& key, bool* window_complete) {
  const int64_t size = config_.assigner->size();
  int64_t index = count_window_counters_[key.ToString()]++;
  int64_t window_start = (index / size) * size;
  *window_complete = (index + 1) % size == 0;
  return Window(window_start, window_start + size);
}

Status WindowOperator::MergeSessionWindows(const Event& event,
                                           MergingWindowSet::MergeResult* merge) {
  window_scratch_.clear();
  config_.assigner->AssignWindows(event.timestamp, &window_scratch_);
  assert(window_scratch_.size() == 1);
  *merge = merging_windows_.AddWindow(event.key, window_scratch_[0]);

  // Replace the timers of every window the merge consumed.
  for (const Window& old : merge->replaced_windows) {
    timers_.Delete(old.max_timestamp(), event.key, old);
  }
  Timer timer;
  timer.time = merge->merged.max_timestamp();
  timer.key = event.key;
  timer.window = merge->merged;
  timer.state_window = merge->state_window;
  timers_.Register(timer);
  return Status::Ok();
}

Status WindowOperator::ProcessRmw(const Event& event, Collector* out) {
  const WindowKind kind = config_.assigner->kind();
  if (config_.assigner->RequiresMerging()) {
    MergingWindowSet::MergeResult merge;
    FLOWKV_RETURN_IF_ERROR(MergeSessionWindows(event, &merge));
    // Fold absorbed sessions' accumulators into the surviving state window.
    std::string acc;
    Status got = rmw_->Get(event.key, merge.state_window, &acc);
    if (got.IsNotFound()) {
      acc = config_.aggregate->CreateAccumulator();
    } else if (!got.ok()) {
      return got;
    }
    for (const Window& absorbed : merge.absorbed_state_windows) {
      std::string other;
      Status s = rmw_->Get(event.key, absorbed, &other);
      if (s.ok()) {
        acc = config_.aggregate->MergeAccumulators(acc, other);
        FLOWKV_RETURN_IF_ERROR(rmw_->Remove(event.key, absorbed));
      } else if (!s.IsNotFound()) {
        return s;
      }
    }
    config_.aggregate->Add(event.value, &acc);
    return rmw_->Put(event.key, merge.state_window, acc);
  }

  bool complete = false;
  window_scratch_.clear();
  if (kind == WindowKind::kCount) {
    window_scratch_.push_back(AssignCountWindow(event.key, &complete));
  } else {
    config_.assigner->AssignWindows(event.timestamp, &window_scratch_);
  }
  for (const Window& w : window_scratch_) {
    std::string acc;
    Status got = rmw_->Get(event.key, w, &acc);
    if (got.IsNotFound()) {
      acc = config_.aggregate->CreateAccumulator();
    } else if (!got.ok()) {
      return got;
    }
    config_.aggregate->Add(event.value, &acc);
    FLOWKV_RETURN_IF_ERROR(rmw_->Put(event.key, w, acc));
    Timer timer;
    timer.time = TimerTimeFor(kind, w);
    timer.key = event.key;
    timer.window = w;
    timer.state_window = w;
    timers_.Register(timer);
    if (complete) {
      timers_.Delete(timer.time, event.key, w);
      FLOWKV_RETURN_IF_ERROR(FireRmw(event.key, w, w, out));
    }
  }
  return Status::Ok();
}

Status WindowOperator::ProcessAppendAligned(const Event& event) {
  window_scratch_.clear();
  config_.assigner->AssignWindows(event.timestamp, &window_scratch_);
  for (const Window& w : window_scratch_) {
    // Tuples in several windows are replicated per window (paper §2.1).
    FLOWKV_RETURN_IF_ERROR(aar_->Append(event.key, event.value, w));
    // One per-window timer; registrations coalesce.
    Timer timer;
    timer.time = TimerTimeFor(config_.assigner->kind(), w);
    timer.window = w;
    timer.state_window = w;
    timers_.Register(timer);
  }
  return Status::Ok();
}

Status WindowOperator::ProcessAppendUnaligned(const Event& event, Collector* out) {
  const WindowKind kind = config_.assigner->kind();
  if (config_.assigner->RequiresMerging()) {
    MergingWindowSet::MergeResult merge;
    FLOWKV_RETURN_IF_ERROR(MergeSessionWindows(event, &merge));
    if (!merge.absorbed_state_windows.empty()) {
      FLOWKV_RETURN_IF_ERROR(
          aur_->MergeWindows(event.key, merge.absorbed_state_windows, merge.state_window));
    }
    return aur_->Append(event.key, event.value, merge.state_window, event.timestamp);
  }

  bool complete = false;
  window_scratch_.clear();
  if (kind == WindowKind::kCount) {
    window_scratch_.push_back(AssignCountWindow(event.key, &complete));
  } else {
    config_.assigner->AssignWindows(event.timestamp, &window_scratch_);
  }
  for (const Window& w : window_scratch_) {
    FLOWKV_RETURN_IF_ERROR(aur_->Append(event.key, event.value, w, event.timestamp));
    Timer timer;
    timer.time = TimerTimeFor(kind, w);
    timer.key = event.key;
    timer.window = w;
    timer.state_window = w;
    timers_.Register(timer);
    if (complete) {
      timers_.Delete(timer.time, event.key, w);
      FLOWKV_RETURN_IF_ERROR(FireUnaligned(event.key, w, w, out));
    }
  }
  return Status::Ok();
}

Status WindowOperator::OnWatermark(int64_t watermark, Collector* out) {
  current_watermark_ = std::max(current_watermark_, watermark);
  for (const Timer& timer : timers_.PopDue(watermark)) {
    FLOWKV_RETURN_IF_ERROR(FireTimer(timer, out));
  }
  return Status::Ok();
}

Status WindowOperator::Finish(Collector* out) {
  for (const Timer& timer : timers_.PopAll()) {
    FLOWKV_RETURN_IF_ERROR(FireTimer(timer, out));
  }
  return Status::Ok();
}

Status WindowOperator::FireTimer(const Timer& timer, Collector* out) {
  switch (pattern_) {
    case StorePattern::kAppendAligned:
      return FireAligned(timer.window, out);
    case StorePattern::kAppendUnaligned:
      return FireUnaligned(timer.key, timer.window, timer.state_window, out);
    case StorePattern::kReadModifyWrite: {
      FLOWKV_RETURN_IF_ERROR(FireRmw(timer.key, timer.state_window, timer.window, out));
      if (config_.assigner->RequiresMerging()) {
        merging_windows_.Retire(timer.key, timer.window);
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown pattern");
}

Status WindowOperator::FireAligned(const Window& w, Collector* out) {
  obs::TraceInstant("window_fire", "window", "start_ms", w.start, "end_ms", w.end);
  // Gradual state loading (§4.1): drain the window chunk by chunk so only
  // one partition is in flight at a time.
  while (true) {
    std::vector<WindowChunkEntry> chunk;
    bool done = false;
    FLOWKV_RETURN_IF_ERROR(aar_->GetWindowChunk(w, &chunk, &done));
    if (done) {
      return Status::Ok();
    }
    for (const WindowChunkEntry& entry : chunk) {
      FLOWKV_RETURN_IF_ERROR(EmitProcessed(entry.key, w, entry.values, out));
    }
  }
}

Status WindowOperator::FireUnaligned(const Slice& key, const Window& window,
                                     const Window& state_window, Collector* out) {
  obs::TraceInstant("window_fire", "window", "start_ms", window.start, "end_ms", window.end);
  std::vector<std::string> values;
  Status s = aur_->Get(key, state_window, &values);
  if (s.IsNotFound()) {
    values.clear();  // window absorbed elsewhere or already drained
  } else if (!s.ok()) {
    return s;
  }
  if (config_.assigner->RequiresMerging()) {
    merging_windows_.Retire(key, window);
  }
  if (values.empty()) {
    return Status::Ok();
  }
  return EmitProcessed(key, window, values, out);
}

Status WindowOperator::FireRmw(const Slice& key, const Window& state_window,
                               const Window& result_window, Collector* out) {
  obs::TraceInstant("window_fire", "window", "start_ms", result_window.start, "end_ms",
                    result_window.end);
  std::string acc;
  Status s = rmw_->Get(key, state_window, &acc);
  if (s.IsNotFound()) {
    return Status::Ok();  // absorbed by a session merge
  }
  FLOWKV_RETURN_IF_ERROR(s);
  FLOWKV_RETURN_IF_ERROR(rmw_->Remove(key, state_window));
  Event result(key.ToString(), config_.aggregate->GetResult(acc),
               result_window.max_timestamp());
  return out->Emit(result);
}

Status WindowOperator::EmitProcessed(const Slice& key, const Window& window,
                                     const std::vector<std::string>& values, Collector* out) {
  const std::string key_copy = key.ToString();
  return config_.process->Process(key, window, values, [&](std::string value) {
    return out->Emit(Event(key_copy, std::move(value), window.max_timestamp()));
  });
}

}  // namespace flowkv
