// Pattern-specific state interfaces — the engine-side mirror of the FlowKV
// store API (paper Listing 1). Every backend (FlowKV, LSM, hash-log,
// in-memory) provides these three handles; the window operator picks one
// according to its store pattern.
//
// All handles follow the single-threaded-per-partition contract: one handle
// instance is only ever used by the physical operator that owns it.
#ifndef SRC_SPE_STATE_H_
#define SRC_SPE_STATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/spe/window.h"

namespace flowkv {

// The three data-access patterns of window operations (paper §2.1). Which
// pattern an operation has follows from its aggregate-function interface and
// window-function kind (§3.1); custom window functions conservatively map to
// the Unaligned pattern.
enum class StorePattern {
  kAppendAligned,    // AAR
  kAppendUnaligned,  // AUR
  kReadModifyWrite,  // RMW
};

inline const char* StorePatternName(StorePattern p) {
  switch (p) {
    case StorePattern::kAppendAligned:
      return "AAR";
    case StorePattern::kAppendUnaligned:
      return "AUR";
    case StorePattern::kReadModifyWrite:
      return "RMW";
  }
  return "?";
}

inline StorePattern ClassifyPattern(bool incremental, WindowKind kind,
                                    ReadAlignmentHint hint = ReadAlignmentHint::kDefault) {
  if (incremental) {
    return StorePattern::kReadModifyWrite;
  }
  switch (hint) {
    case ReadAlignmentHint::kAligned:
      return StorePattern::kAppendAligned;
    case ReadAlignmentHint::kUnaligned:
      return StorePattern::kAppendUnaligned;
    case ReadAlignmentHint::kDefault:
      break;
  }
  return IsAlignedRead(kind) ? StorePattern::kAppendAligned
                             : StorePattern::kAppendUnaligned;
}

// One key's tuple list inside a window chunk.
struct WindowChunkEntry {
  std::string key;
  std::vector<std::string> values;
};

// Append & Aligned Read: all keys of a window are read together when the
// window triggers.
class AppendAlignedState {
 public:
  virtual ~AppendAlignedState() = default;

  // Appends the KV tuple under its window.
  virtual Status Append(const Slice& key, const Slice& value, const Window& w) = 0;

  // Fetch-and-remove, chunked ("gradual state loading", §4.1): fills `chunk`
  // with the next partition of the window's state and sets *done=false, or
  // sets *done=true when the window is fully drained (chunk left empty).
  // State read this way is gone from the store afterwards.
  virtual Status GetWindowChunk(const Window& w, std::vector<WindowChunkEntry>* chunk,
                                bool* done) = 0;
};

// Append & Unaligned Read: windows trigger per key at data-dependent times.
class AppendUnalignedState {
 public:
  virtual ~AppendUnalignedState() = default;

  // Appends the KV tuple under (key, window); `timestamp` feeds trigger-time
  // estimation (FlowKV's predictive batch read).
  virtual Status Append(const Slice& key, const Slice& value, const Window& w,
                        int64_t timestamp) = 0;

  // Fetch-and-removes the full tuple list of (key, window).
  virtual Status Get(const Slice& key, const Window& w, std::vector<std::string>* values) = 0;

  // Moves all state of (key, src) windows into (key, dst); used when session
  // windows with existing state merge. Timestamps travel with the values.
  virtual Status MergeWindows(const Slice& key, const std::vector<Window>& sources,
                              const Window& dst) = 0;
};

// Read-Modify-Write: incremental aggregates read and written on every tuple.
class RmwState {
 public:
  virtual ~RmwState() = default;

  // Reads the current aggregate of (key, window). NotFound when absent.
  virtual Status Get(const Slice& key, const Window& w, std::string* accumulator) = 0;

  // Writes back the updated aggregate.
  virtual Status Put(const Slice& key, const Window& w, const Slice& accumulator) = 0;

  // Drops the aggregate after the final read at trigger time.
  virtual Status Remove(const Slice& key, const Window& w) = 0;
};

// Everything a query needs to know to let a backend specialize its stores
// (FlowKV derives the store pattern and the ETT predictor from this; the
// baselines ignore most of it — that is the paper's point).
struct OperatorStateSpec {
  std::string name;            // unique per logical operator, used for paths
  WindowKind window_kind = WindowKind::kTumbling;
  bool incremental = false;    // AggregateFunction (true) vs ProcessWindowFunction
  int64_t window_size_ms = 0;  // tumbling/sliding length
  int64_t session_gap_ms = 0;  // session assigners
  // Annotation for custom window functions (paper §8).
  ReadAlignmentHint alignment_hint = ReadAlignmentHint::kDefault;
};

// A state backend instance scoped to one physical operator (one worker's
// share of one logical operator). Exactly one of the three handle kinds is
// requested, matching the operator's store pattern.
class StateBackend {
 public:
  virtual ~StateBackend() = default;

  virtual Status CreateAppendAligned(const OperatorStateSpec& spec,
                                     std::unique_ptr<AppendAlignedState>* out) = 0;
  virtual Status CreateAppendUnaligned(const OperatorStateSpec& spec,
                                       std::unique_ptr<AppendUnalignedState>* out) = 0;
  virtual Status CreateRmw(const OperatorStateSpec& spec, std::unique_ptr<RmwState>* out) = 0;

  // Aggregated operation statistics across every handle this backend created.
  virtual StoreStats GatherStats() const = 0;

  // Snapshots every store this backend owns into `checkpoint_dir` (paper §8
  // checkpointing). Backends without snapshot support return Unimplemented.
  virtual Status CheckpointTo(const std::string& checkpoint_dir) const {
    return Status::Unimplemented("backend does not support checkpointing");
  }

  virtual std::string name() const = 0;
};

// Creates one StateBackend per physical operator instance; implementations
// live in src/backends.
class StateBackendFactory {
 public:
  virtual ~StateBackendFactory() = default;

  // `worker` and `operator_index` disambiguate on-disk paths.
  virtual Status CreateBackend(int worker, const std::string& operator_name,
                               std::unique_ptr<StateBackend>* out) = 0;

  virtual std::string name() const = 0;
};

}  // namespace flowkv

#endif  // SRC_SPE_STATE_H_
