#include "src/spe/window.h"

#include "src/common/coding.h"

namespace flowkv {

void EncodeWindow(std::string* dst, const Window& w) {
  PutFixed64(dst, static_cast<uint64_t>(w.start));
  PutFixed64(dst, static_cast<uint64_t>(w.end));
}

bool DecodeWindow(Slice* input, Window* w) {
  uint64_t start, end;
  if (!GetFixed64(input, &start) || !GetFixed64(input, &end)) {
    return false;
  }
  w->start = static_cast<int64_t>(start);
  w->end = static_cast<int64_t>(end);
  return true;
}

void OrderPreservingEncode64(std::string* dst, int64_t v) {
  // Flip the sign bit so negative values order before positive, then store
  // big-endian.
  uint64_t u = static_cast<uint64_t>(v) ^ (1ULL << 63);
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst->push_back(static_cast<char>((u >> shift) & 0xff));
  }
}

int64_t OrderPreservingDecode64(const char* src) {
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u = (u << 8) | static_cast<uint8_t>(src[i]);
  }
  return static_cast<int64_t>(u ^ (1ULL << 63));
}

bool IsAlignedRead(WindowKind kind) {
  switch (kind) {
    case WindowKind::kTumbling:
    case WindowKind::kSliding:
    case WindowKind::kGlobal:
      return true;
    case WindowKind::kSession:
    case WindowKind::kCount:
    case WindowKind::kCustom:
      return false;
  }
  return false;
}

}  // namespace flowkv
