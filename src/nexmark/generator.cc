#include "src/nexmark/generator.h"

#include "src/nexmark/events.h"

namespace flowkv {

namespace {
// Workers own disjoint id ranges so key partitions never overlap.
constexpr uint64_t kWorkerIdStride = 1ULL << 40;
}  // namespace

NexmarkSource::NexmarkSource(const NexmarkConfig& config, int worker)
    : config_(config),
      worker_(worker),
      rng_(config.seed * 1000003 + static_cast<uint64_t>(worker)) {
  if (config_.key_skew > 0) {
    person_zipf_ = std::make_unique<ZipfGenerator>(config_.num_people, config_.key_skew,
                                                   rng_.Next());
    auction_zipf_ = std::make_unique<ZipfGenerator>(config_.num_auctions, config_.key_skew,
                                                    rng_.Next());
  }
}

uint64_t NexmarkSource::PickPersonId() {
  const uint64_t base = static_cast<uint64_t>(worker_) * kWorkerIdStride;
  const uint64_t offset =
      person_zipf_ ? person_zipf_->Next() : rng_.Uniform(config_.num_people);
  return base + (offset % config_.num_people);
}

uint64_t NexmarkSource::PickAuctionId() {
  const uint64_t base = static_cast<uint64_t>(worker_) * kWorkerIdStride + (1ULL << 32);
  if (auction_zipf_) {
    return base + (auction_zipf_->Next() % config_.num_auctions);
  }
  // Bids favor auctions opened recently (id lookback), like the Beam
  // generator's hot-auction behavior.
  uint64_t hi = next_auction_ == 0 ? 1 : next_auction_;
  uint64_t lo = hi > config_.auction_lookback ? hi - config_.auction_lookback : 0;
  return base + (lo + rng_.Uniform(hi - lo)) % config_.num_auctions;
}

bool NexmarkSource::Next(Event* event) {
  if (emitted_ >= config_.events_per_worker) {
    return false;
  }
  const uint64_t slot = emitted_ % 50;
  const int64_t ts = now_ms_;
  now_ms_ += config_.inter_event_ms;
  ++emitted_;

  const uint64_t person_base = static_cast<uint64_t>(worker_) * kWorkerIdStride;
  const uint64_t auction_base = person_base + (1ULL << 32);

  if (slot < static_cast<uint64_t>(config_.persons_per_50)) {
    Person p;
    p.id = person_base + (next_person_++ % config_.num_people);
    p.state = rng_.Next();
    *event = Event(IdKey(p.id), SerializePerson(p), ts);
    return true;
  }
  if (slot < static_cast<uint64_t>(config_.persons_per_50 + config_.auctions_per_50)) {
    Auction a;
    a.id = auction_base + (next_auction_++ % config_.num_auctions);
    a.seller = PickPersonId();
    *event = Event(IdKey(a.id), SerializeAuction(a), ts);
    return true;
  }
  Bid b;
  b.auction = PickAuctionId();
  b.bidder = PickPersonId();
  b.price = 100 + rng_.Uniform(10'000);
  b.date_time = ts;
  *event = Event(IdKey(b.bidder), SerializeBid(b), ts);
  return true;
}

SourceFactory MakeNexmarkSourceFactory(const NexmarkConfig& config) {
  return [config](int worker) -> std::unique_ptr<SourceIterator> {
    return std::make_unique<NexmarkSource>(config, worker);
  };
}

}  // namespace flowkv
