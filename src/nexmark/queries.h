// The eight NEXMark queries of the paper's evaluation (§6, "Workload"),
// expressed as pipeline builders over the mini engine:
//
//   q5          RMW + RMW   bids/auction sliding count, then consecutive
//                           sliding top-auction with incremental aggregation
//   q5-append   RMW + AAR   same, but the top-auction stage collects the
//                           full list (no incremental aggregation)
//   q7          AAR         highest bid per bidder, fixed windows
//   q7-session  AUR         q7 with session windows
//   q8          AAR         new users who opened auctions, windowed join
//   q11         RMW         bids per bidder, session windows
//   q11-median  AUR         median bid price per bidder, session windows
//   q12         RMW         bids per bidder, global window
#ifndef SRC_NEXMARK_QUERIES_H_
#define SRC_NEXMARK_QUERIES_H_

#include <string>
#include <vector>

#include "src/spe/pipeline.h"

namespace flowkv {

struct QueryParams {
  // Fixed/sliding window length (sliding interval = half, as in §6.1).
  int64_t window_size_ms = 200'000;
  // Session gap for q7-session / q11 / q11-median.
  int64_t session_gap_ms = 1'000;
};

// All valid query names, in the paper's order.
const std::vector<std::string>& NexmarkQueryNames();

// Appends the query's operators to `pipeline`. InvalidArgument for unknown
// names.
Status BuildNexmarkQuery(const std::string& name, const QueryParams& params,
                         Pipeline* pipeline);

}  // namespace flowkv

#endif  // SRC_NEXMARK_QUERIES_H_
