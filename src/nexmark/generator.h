// NEXMark stream generator (after the Beam generator the paper uses).
// Deterministic given a seed; each worker generates a disjoint key partition
// (share-nothing physical plan). Event time advances at a configurable pace
// so window sizes translate into state sizes.
#ifndef SRC_NEXMARK_GENERATOR_H_
#define SRC_NEXMARK_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "src/common/random.h"
#include "src/spe/job_runner.h"

namespace flowkv {

struct NexmarkConfig {
  uint64_t events_per_worker = 100'000;

  // Out of every 50 events: 1 person, 3 auctions, 46 bids (2%/6%/92%).
  int persons_per_50 = 1;
  int auctions_per_50 = 3;

  // Event-time milliseconds between consecutive events. With the default
  // 10 ms spacing, a 2,000,000 ms window holds ~200k events per worker.
  int64_t inter_event_ms = 10;

  // Key cardinalities (per worker partition).
  uint64_t num_people = 2'000;
  uint64_t num_auctions = 2'000;

  // Zipf skew of bidder/auction selection; 0 = uniform.
  double key_skew = 0.0;

  uint64_t seed = 42;

  // Bids reference recently-opened auctions within this id lookback.
  uint64_t auction_lookback = 500;
};

class NexmarkSource : public SourceIterator {
 public:
  NexmarkSource(const NexmarkConfig& config, int worker);

  bool Next(Event* event) override;

  // Total timestamp span of this source's stream (for rate conversions).
  int64_t EventTimeSpanMs() const {
    return static_cast<int64_t>(config_.events_per_worker) * config_.inter_event_ms;
  }

 private:
  uint64_t PickPersonId();
  uint64_t PickAuctionId();

  NexmarkConfig config_;
  int worker_;
  uint64_t emitted_ = 0;
  uint64_t next_person_ = 0;
  uint64_t next_auction_ = 0;
  int64_t now_ms_ = 0;
  Random rng_;
  std::unique_ptr<ZipfGenerator> person_zipf_;
  std::unique_ptr<ZipfGenerator> auction_zipf_;
};

// SourceFactory adapter.
SourceFactory MakeNexmarkSourceFactory(const NexmarkConfig& config);

}  // namespace flowkv

#endif  // SRC_NEXMARK_GENERATOR_H_
