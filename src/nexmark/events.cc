#include "src/nexmark/events.h"

#include "src/common/coding.h"

namespace flowkv {

namespace {
void PutTag(std::string* dst, NexmarkEventType type) {
  dst->push_back(static_cast<char>(type));
}
}  // namespace

std::string SerializePerson(const Person& p) {
  std::string out;
  out.reserve(17);
  PutTag(&out, NexmarkEventType::kPerson);
  PutFixed64(&out, p.id);
  PutFixed64(&out, p.state);
  return out;
}

std::string SerializeAuction(const Auction& a) {
  std::string out;
  out.reserve(17);
  PutTag(&out, NexmarkEventType::kAuction);
  PutFixed64(&out, a.id);
  PutFixed64(&out, a.seller);
  return out;
}

std::string SerializeBid(const Bid& b) {
  std::string out;
  out.reserve(84);
  PutTag(&out, NexmarkEventType::kBid);
  PutFixed64(&out, b.auction);
  PutFixed64(&out, b.bidder);
  PutFixed64(&out, b.price);
  PutFixed64(&out, static_cast<uint64_t>(b.date_time));
  out.append(Bid::kExtraBytes, '\x5a');  // opaque payload padding
  return out;
}

bool PeekEventType(const Slice& data, NexmarkEventType* type) {
  if (data.empty() || static_cast<uint8_t>(data[0]) > 2) {
    return false;
  }
  *type = static_cast<NexmarkEventType>(data[0]);
  return true;
}

bool ParsePerson(const Slice& data, Person* p) {
  NexmarkEventType type;
  if (!PeekEventType(data, &type) || type != NexmarkEventType::kPerson || data.size() < 17) {
    return false;
  }
  p->id = DecodeFixed64(data.data() + 1);
  p->state = DecodeFixed64(data.data() + 9);
  return true;
}

bool ParseAuction(const Slice& data, Auction* a) {
  NexmarkEventType type;
  if (!PeekEventType(data, &type) || type != NexmarkEventType::kAuction || data.size() < 17) {
    return false;
  }
  a->id = DecodeFixed64(data.data() + 1);
  a->seller = DecodeFixed64(data.data() + 9);
  return true;
}

bool ParseBid(const Slice& data, Bid* b) {
  NexmarkEventType type;
  if (!PeekEventType(data, &type) || type != NexmarkEventType::kBid || data.size() < 33) {
    return false;
  }
  b->auction = DecodeFixed64(data.data() + 1);
  b->bidder = DecodeFixed64(data.data() + 9);
  b->price = DecodeFixed64(data.data() + 17);
  b->date_time = static_cast<int64_t>(DecodeFixed64(data.data() + 25));
  return true;
}

std::string IdKey(uint64_t id) {
  std::string key;
  PutFixed64(&key, id);
  return key;
}

uint64_t ParseIdKey(const Slice& key) {
  return key.size() >= 8 ? DecodeFixed64(key.data()) : 0;
}

}  // namespace flowkv
