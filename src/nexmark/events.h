// NEXMark event model (online auctions): persons register, auctions open,
// bids arrive. Serialized sizes follow the paper's measured averages
// (person 16 B, auction 16 B, bid 84 B including padding, §6 "Input
// dataset"); streams are 2% persons / 6% auctions / 92% bids.
#ifndef SRC_NEXMARK_EVENTS_H_
#define SRC_NEXMARK_EVENTS_H_

#include <cstdint>
#include <string>

#include "src/common/slice.h"

namespace flowkv {

enum class NexmarkEventType : uint8_t {
  kPerson = 0,
  kAuction = 1,
  kBid = 2,
};

struct Person {
  uint64_t id = 0;
  uint64_t state = 0;  // opaque demographic hash
};

struct Auction {
  uint64_t id = 0;
  uint64_t seller = 0;  // person id
};

struct Bid {
  static constexpr size_t kExtraBytes = 51;  // pads the record to 84 B

  uint64_t auction = 0;
  uint64_t bidder = 0;  // person id
  uint64_t price = 0;
  int64_t date_time = 0;
};

// Serialization: 1-byte type tag + fixed fields (+ padding for bids).
// Persons/auctions: 1+8+8 = 17 B; bids: 1+8+8+8+8+51 = 84 B.
std::string SerializePerson(const Person& p);
std::string SerializeAuction(const Auction& a);
std::string SerializeBid(const Bid& b);

// Peeks the type tag; false on empty input.
bool PeekEventType(const Slice& data, NexmarkEventType* type);

bool ParsePerson(const Slice& data, Person* p);
bool ParseAuction(const Slice& data, Auction* a);
bool ParseBid(const Slice& data, Bid* b);

// Fixed-width key encoding used by every query (8-byte little-endian id).
std::string IdKey(uint64_t id);
uint64_t ParseIdKey(const Slice& key);

}  // namespace flowkv

#endif  // SRC_NEXMARK_EVENTS_H_
