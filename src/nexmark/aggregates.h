// Aggregate and process functions used by the NEXMark queries. Incremental
// ones (AggregateFunction) drive the RMW pattern; full-window ones
// (ProcessWindowFunction) drive the Append patterns.
#ifndef SRC_NEXMARK_AGGREGATES_H_
#define SRC_NEXMARK_AGGREGATES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/spe/functions.h"

namespace flowkv {

// acc/result: fixed64 count.
class CountAggregate : public AggregateFunction {
 public:
  std::string CreateAccumulator() const override;
  void Add(const Slice& value, std::string* accumulator) const override;
  std::string GetResult(const Slice& accumulator) const override;
  std::string MergeAccumulators(const Slice& a, const Slice& b) const override;
};

// Input values: (auction fixed64, count fixed64) pairs; acc/result likewise,
// keeping the pair with the highest count (ties: lower auction id).
class TopAuctionAggregate : public AggregateFunction {
 public:
  std::string CreateAccumulator() const override;
  void Add(const Slice& value, std::string* accumulator) const override;
  std::string GetResult(const Slice& accumulator) const override;
  std::string MergeAccumulators(const Slice& a, const Slice& b) const override;
};

// Values: serialized bids; emits the maximum price (fixed64).
class MaxPriceProcess : public ProcessWindowFunction {
 public:
  Status Process(const Slice& key, const Window& window,
                 const std::vector<std::string>& values, const EmitFn& emit) const override;
};

// Values: serialized bids; emits the median price (fixed64, lower median).
class MedianPriceProcess : public ProcessWindowFunction {
 public:
  Status Process(const Slice& key, const Window& window,
                 const std::vector<std::string>& values, const EmitFn& emit) const override;
};

// Values: (auction, count) pairs; emits the pair with the highest count
// without incremental aggregation (Q5-Append's point).
class TopAuctionProcess : public ProcessWindowFunction {
 public:
  Status Process(const Slice& key, const Window& window,
                 const std::vector<std::string>& values, const EmitFn& emit) const override;
};

// Values: serialized persons and auctions sharing key = person id = seller;
// emits (person, auction) for every auction a brand-new user opened in the
// window (NEXMark Q8 windowed join).
class NewUserAuctionJoinProcess : public ProcessWindowFunction {
 public:
  Status Process(const Slice& key, const Window& window,
                 const std::vector<std::string>& values, const EmitFn& emit) const override;
};

// (auction, count) pair codec shared by Q5 variants.
std::string EncodeAuctionCount(uint64_t auction, uint64_t count);
bool DecodeAuctionCount(const Slice& data, uint64_t* auction, uint64_t* count);

}  // namespace flowkv

#endif  // SRC_NEXMARK_AGGREGATES_H_
