#include "src/nexmark/aggregates.h"

#include <algorithm>

#include "src/common/coding.h"
#include "src/nexmark/events.h"

namespace flowkv {

// ------------------------------ CountAggregate ------------------------------

std::string CountAggregate::CreateAccumulator() const {
  std::string acc;
  PutFixed64(&acc, 0);
  return acc;
}

void CountAggregate::Add(const Slice& value, std::string* accumulator) const {
  const uint64_t count = DecodeFixed64(accumulator->data()) + 1;
  EncodeFixed64(accumulator->data(), count);
}

std::string CountAggregate::GetResult(const Slice& accumulator) const {
  return accumulator.ToString();
}

std::string CountAggregate::MergeAccumulators(const Slice& a, const Slice& b) const {
  std::string merged;
  PutFixed64(&merged, DecodeFixed64(a.data()) + DecodeFixed64(b.data()));
  return merged;
}

// --------------------------- TopAuctionAggregate ---------------------------

std::string EncodeAuctionCount(uint64_t auction, uint64_t count) {
  std::string out;
  PutFixed64(&out, auction);
  PutFixed64(&out, count);
  return out;
}

bool DecodeAuctionCount(const Slice& data, uint64_t* auction, uint64_t* count) {
  if (data.size() < 16) {
    return false;
  }
  *auction = DecodeFixed64(data.data());
  *count = DecodeFixed64(data.data() + 8);
  return true;
}

namespace {
// Returns true when (auction_b, count_b) beats (auction_a, count_a).
bool PairBeats(uint64_t auction_a, uint64_t count_a, uint64_t auction_b, uint64_t count_b) {
  if (count_b != count_a) {
    return count_b > count_a;
  }
  return auction_b < auction_a;
}
}  // namespace

std::string TopAuctionAggregate::CreateAccumulator() const {
  return EncodeAuctionCount(UINT64_MAX, 0);
}

void TopAuctionAggregate::Add(const Slice& value, std::string* accumulator) const {
  // A short/corrupt accumulator decodes as the neutral element (any real bid
  // beats it) instead of feeding uninitialized values into the comparison.
  uint64_t best_auction = UINT64_MAX, best_count = 0;
  uint64_t auction, count;
  DecodeAuctionCount(*accumulator, &best_auction, &best_count);
  if (DecodeAuctionCount(value, &auction, &count) &&
      PairBeats(best_auction, best_count, auction, count)) {
    *accumulator = EncodeAuctionCount(auction, count);
  }
}

std::string TopAuctionAggregate::GetResult(const Slice& accumulator) const {
  return accumulator.ToString();
}

std::string TopAuctionAggregate::MergeAccumulators(const Slice& a, const Slice& b) const {
  // As in Add: a side that fails to decode is the neutral element and loses.
  uint64_t auction_a = UINT64_MAX, count_a = 0, auction_b = UINT64_MAX, count_b = 0;
  DecodeAuctionCount(a, &auction_a, &count_a);
  DecodeAuctionCount(b, &auction_b, &count_b);
  return PairBeats(auction_a, count_a, auction_b, count_b) ? b.ToString() : a.ToString();
}

// ----------------------------- MaxPriceProcess -----------------------------

Status MaxPriceProcess::Process(const Slice& key, const Window& window,
                                const std::vector<std::string>& values,
                                const EmitFn& emit) const {
  uint64_t max_price = 0;
  bool any = false;
  Bid bid;
  for (const auto& value : values) {
    if (ParseBid(value, &bid)) {
      max_price = std::max(max_price, bid.price);
      any = true;
    }
  }
  if (!any) {
    return Status::Ok();
  }
  std::string out;
  PutFixed64(&out, max_price);
  return emit(std::move(out));
}

// ---------------------------- MedianPriceProcess ----------------------------

Status MedianPriceProcess::Process(const Slice& key, const Window& window,
                                   const std::vector<std::string>& values,
                                   const EmitFn& emit) const {
  std::vector<uint64_t> prices;
  prices.reserve(values.size());
  Bid bid;
  for (const auto& value : values) {
    if (ParseBid(value, &bid)) {
      prices.push_back(bid.price);
    }
  }
  if (prices.empty()) {
    return Status::Ok();
  }
  const size_t mid = (prices.size() - 1) / 2;
  std::nth_element(prices.begin(), prices.begin() + mid, prices.end());
  std::string out;
  PutFixed64(&out, prices[mid]);
  return emit(std::move(out));
}

// ---------------------------- TopAuctionProcess ----------------------------

Status TopAuctionProcess::Process(const Slice& key, const Window& window,
                                  const std::vector<std::string>& values,
                                  const EmitFn& emit) const {
  uint64_t best_auction = UINT64_MAX;
  uint64_t best_count = 0;
  bool any = false;
  for (const auto& value : values) {
    uint64_t auction, count;
    if (DecodeAuctionCount(value, &auction, &count)) {
      if (!any || PairBeats(best_auction, best_count, auction, count)) {
        best_auction = auction;
        best_count = count;
      }
      any = true;
    }
  }
  if (!any) {
    return Status::Ok();
  }
  return emit(EncodeAuctionCount(best_auction, best_count));
}

// ------------------------- NewUserAuctionJoinProcess -------------------------

Status NewUserAuctionJoinProcess::Process(const Slice& key, const Window& window,
                                          const std::vector<std::string>& values,
                                          const EmitFn& emit) const {
  bool person_seen = false;
  uint64_t person_id = 0;
  std::vector<uint64_t> auctions;
  Person person;
  Auction auction;
  for (const auto& value : values) {
    if (ParsePerson(value, &person)) {
      person_seen = true;
      person_id = person.id;
    } else if (ParseAuction(value, &auction)) {
      auctions.push_back(auction.id);
    }
  }
  if (!person_seen) {
    return Status::Ok();
  }
  std::sort(auctions.begin(), auctions.end());
  for (uint64_t auction_id : auctions) {
    std::string out;
    PutFixed64(&out, person_id);
    PutFixed64(&out, auction_id);
    FLOWKV_RETURN_IF_ERROR(emit(std::move(out)));
  }
  return Status::Ok();
}

}  // namespace flowkv
