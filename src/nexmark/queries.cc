#include "src/nexmark/queries.h"

#include "src/common/coding.h"
#include "src/nexmark/aggregates.h"
#include "src/nexmark/events.h"
#include "src/spe/window_operator.h"

namespace flowkv {

namespace {

// Keeps only bids, re-keyed by the given field.
enum class BidKeyField { kBidder, kAuction };

std::unique_ptr<Operator> MakeBidRekey(const std::string& name, BidKeyField field) {
  return std::make_unique<FlatMapOperator>(
      name, [field](const Event& event, std::vector<Event>* out) {
        Bid bid;
        if (!ParseBid(event.value, &bid)) {
          return;
        }
        const uint64_t key = field == BidKeyField::kBidder ? bid.bidder : bid.auction;
        out->emplace_back(IdKey(key), event.value, event.timestamp);
      });
}

// Q8: persons keyed by their id, auctions keyed by their seller; bids drop.
std::unique_ptr<Operator> MakePersonAuctionRekey(const std::string& name) {
  return std::make_unique<FlatMapOperator>(
      name, [](const Event& event, std::vector<Event>* out) {
        Person person;
        Auction auction;
        if (ParsePerson(event.value, &person)) {
          out->emplace_back(IdKey(person.id), event.value, event.timestamp);
        } else if (ParseAuction(event.value, &auction)) {
          out->emplace_back(IdKey(auction.seller), event.value, event.timestamp);
        }
      });
}

// Q5 stage boundary: stage-1 emits (key=auction, value=count); stage 2 wants
// (key=constant, value=(auction, count)) so one operator sees every auction.
std::unique_ptr<Operator> MakeAuctionCountRekey(const std::string& name) {
  return std::make_unique<MapOperator>(name, [](const Event& event) {
    return Event("top", EncodeAuctionCount(ParseIdKey(event.key),
                                           DecodeFixed64(event.value.data())),
                 event.timestamp);
  });
}

std::unique_ptr<Operator> MakeWindowOp(const std::string& name,
                                       std::shared_ptr<WindowAssigner> assigner,
                                       std::shared_ptr<AggregateFunction> aggregate,
                                       std::shared_ptr<ProcessWindowFunction> process) {
  WindowOperatorConfig config;
  config.name = name;
  config.assigner = std::move(assigner);
  config.aggregate = std::move(aggregate);
  config.process = std::move(process);
  return std::make_unique<WindowOperator>(std::move(config));
}

void BuildQ5(const QueryParams& params, Pipeline* pipeline, bool incremental_top) {
  const int64_t size = params.window_size_ms;
  const int64_t slide = std::max<int64_t>(size / 2, 1);
  pipeline->AddOperator(MakeBidRekey("q5_bids", BidKeyField::kAuction));
  pipeline->AddOperator(MakeWindowOp(
      "q5_count", std::make_shared<SlidingWindowAssigner>(size, slide),
      std::make_shared<CountAggregate>(), nullptr));
  pipeline->AddOperator(MakeAuctionCountRekey("q5_rekey"));
  if (incremental_top) {
    pipeline->AddOperator(MakeWindowOp(
        "q5_top", std::make_shared<SlidingWindowAssigner>(size, slide),
        std::make_shared<TopAuctionAggregate>(), nullptr));
  } else {
    pipeline->AddOperator(MakeWindowOp(
        "q5_top", std::make_shared<SlidingWindowAssigner>(size, slide), nullptr,
        std::make_shared<TopAuctionProcess>()));
  }
}

}  // namespace

const std::vector<std::string>& NexmarkQueryNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "q5", "q5-append", "q7", "q7-session", "q8", "q11", "q11-median", "q12"};
  return *names;
}

Status BuildNexmarkQuery(const std::string& name, const QueryParams& params,
                         Pipeline* pipeline) {
  if (name == "q5") {
    BuildQ5(params, pipeline, /*incremental_top=*/true);
    return Status::Ok();
  }
  if (name == "q5-append") {
    BuildQ5(params, pipeline, /*incremental_top=*/false);
    return Status::Ok();
  }
  if (name == "q7") {
    pipeline->AddOperator(MakeBidRekey("q7_bids", BidKeyField::kBidder));
    pipeline->AddOperator(MakeWindowOp(
        "q7_max", std::make_shared<TumblingWindowAssigner>(params.window_size_ms), nullptr,
        std::make_shared<MaxPriceProcess>()));
    return Status::Ok();
  }
  if (name == "q7-session") {
    pipeline->AddOperator(MakeBidRekey("q7s_bids", BidKeyField::kBidder));
    pipeline->AddOperator(MakeWindowOp(
        "q7s_max", std::make_shared<SessionWindowAssigner>(params.session_gap_ms), nullptr,
        std::make_shared<MaxPriceProcess>()));
    return Status::Ok();
  }
  if (name == "q8") {
    pipeline->AddOperator(MakePersonAuctionRekey("q8_rekey"));
    pipeline->AddOperator(MakeWindowOp(
        "q8_join", std::make_shared<TumblingWindowAssigner>(params.window_size_ms), nullptr,
        std::make_shared<NewUserAuctionJoinProcess>()));
    return Status::Ok();
  }
  if (name == "q11") {
    pipeline->AddOperator(MakeBidRekey("q11_bids", BidKeyField::kBidder));
    pipeline->AddOperator(MakeWindowOp(
        "q11_count", std::make_shared<SessionWindowAssigner>(params.session_gap_ms),
        std::make_shared<CountAggregate>(), nullptr));
    return Status::Ok();
  }
  if (name == "q11-median") {
    pipeline->AddOperator(MakeBidRekey("q11m_bids", BidKeyField::kBidder));
    pipeline->AddOperator(MakeWindowOp(
        "q11m_median", std::make_shared<SessionWindowAssigner>(params.session_gap_ms), nullptr,
        std::make_shared<MedianPriceProcess>()));
    return Status::Ok();
  }
  if (name == "q12") {
    pipeline->AddOperator(MakeBidRekey("q12_bids", BidKeyField::kBidder));
    pipeline->AddOperator(MakeWindowOp("q12_count", std::make_shared<GlobalWindowAssigner>(),
                                       std::make_shared<CountAggregate>(), nullptr));
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown NEXMark query: " + name);
}

}  // namespace flowkv
