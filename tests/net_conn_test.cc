// Unit tests for the reactor server's per-connection buffer management
// (src/net/conn.{h,cc}): read-buffer Consume/compaction boundaries, partial
// writes across FlushWrites calls, exact outbox byte accounting, and the
// zero-progress send regression (a stalled socket must be treated as
// would-block, never spun on or surfaced as an error).
#include "src/net/conn.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "src/common/fault_injection_socket.h"
#include "src/common/net_hooks.h"
#include "src/common/status.h"

namespace flowkv {
namespace net {
namespace {

// A connected AF_UNIX pair; `conn` owns one end (nonblocking), the test
// drives the other end directly.
class ConnPair {
 public:
  ConnPair(size_t max_outbox_bytes = 1 << 20) {
    int fds[2];
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    const int flags = ::fcntl(fds[0], F_GETFL, 0);
    ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
    conn_fd_ = fds[0];
    peer_fd_ = fds[1];
    conn_ = new Connection(/*id=*/1, conn_fd_, max_outbox_bytes);
  }
  ~ConnPair() {
    delete conn_;  // closes conn_fd_
    ::close(peer_fd_);
  }

  Connection& conn() { return *conn_; }
  int peer_fd() const { return peer_fd_; }

  void PeerSend(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(peer_fd_, data.data() + off, data.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  // Drains everything currently readable on the peer end.
  std::string PeerRecvAll() {
    const int flags = ::fcntl(peer_fd_, F_GETFL, 0);
    ::fcntl(peer_fd_, F_SETFL, flags | O_NONBLOCK);
    std::string out;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(peer_fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::fcntl(peer_fd_, F_SETFL, flags);
    return out;
  }

 private:
  int conn_fd_;
  int peer_fd_;
  Connection* conn_;
};

// Installs hooks for the test body, uninstalls on scope exit.
class ScopedNetHooks {
 public:
  explicit ScopedNetHooks(NetHooks* hooks) { InstallNetHooks(hooks); }
  ~ScopedNetHooks() { InstallNetHooks(nullptr); }
};

char PatternByte(size_t i) { return static_cast<char>('a' + (i % 23)); }

std::string PatternString(size_t offset, size_t n) {
  std::string s(n, 0);
  for (size_t i = 0; i < n; ++i) s[i] = PatternByte(offset + i);
  return s;
}

TEST(NetConnTest, ConsumeTracksBufferedWindow) {
  ConnPair p;
  p.PeerSend("hello world");
  bool eof = false;
  ASSERT_TRUE(p.conn().ReadFromSocket(&eof).ok());
  ASSERT_FALSE(eof);
  ASSERT_EQ("hello world", p.conn().buffered().ToString());

  p.conn().Consume(6);
  EXPECT_EQ("world", p.conn().buffered().ToString());

  // Consuming everything resets the buffer entirely.
  p.conn().Consume(5);
  EXPECT_EQ(0u, p.conn().buffered().size());

  // New bytes land in a fresh window.
  p.PeerSend("again");
  ASSERT_TRUE(p.conn().ReadFromSocket(&eof).ok());
  EXPECT_EQ("again", p.conn().buffered().ToString());
}

TEST(NetConnTest, ConsumeCompactionPreservesUnparsedSuffix) {
  // Accumulate well past the 256 KiB compaction threshold, then consume a
  // prefix large enough to trigger compaction (consumed > threshold and
  // consumed > half the buffer). The unparsed suffix must survive byte-exact.
  ConnPair p;
  constexpr size_t kTotal = 600 * 1024;
  constexpr size_t kChunk = 32 * 1024;
  size_t sent = 0;
  bool eof = false;
  while (sent < kTotal) {
    const size_t n = std::min(kChunk, kTotal - sent);
    p.PeerSend(PatternString(sent, n));
    ASSERT_TRUE(p.conn().ReadFromSocket(&eof).ok());
    ASSERT_FALSE(eof);
    sent += n;
  }
  ASSERT_EQ(kTotal, p.conn().buffered().size());

  // Small consume: below the threshold, no compaction, window just narrows.
  p.conn().Consume(100);
  ASSERT_EQ(kTotal - 100, p.conn().buffered().size());
  EXPECT_EQ(PatternByte(100), p.conn().buffered().data()[0]);

  // Push cumulative consumption past 256 KiB and past half the buffer.
  constexpr size_t kPrefix = 320 * 1024;
  p.conn().Consume(kPrefix - 100);
  ASSERT_EQ(kTotal - kPrefix, p.conn().buffered().size());
  const Slice rest = p.conn().buffered();
  for (size_t i = 0; i < rest.size(); ++i) {
    ASSERT_EQ(PatternByte(kPrefix + i), rest.data()[i]) << "at offset " << i;
  }

  // Consume the remainder across the (possibly compacted) buffer.
  p.conn().Consume(rest.size());
  EXPECT_EQ(0u, p.conn().buffered().size());
}

TEST(NetConnTest, OutboxByteAccountingIsExact) {
  ConnPair p;
  EXPECT_EQ(0u, p.conn().outbox_bytes());
  EXPECT_FALSE(p.conn().has_pending_writes());

  p.conn().QueueFrameParts(std::string(8, 'h'), std::string(100, 'p'));
  EXPECT_EQ(108u, p.conn().outbox_bytes());
  // An empty payload queues only the header.
  p.conn().QueueFrameParts(std::string(8, 'H'), "");
  EXPECT_EQ(116u, p.conn().outbox_bytes());
  p.conn().QueueFrame(std::string(40, 'f'));
  EXPECT_EQ(156u, p.conn().outbox_bytes());
  EXPECT_TRUE(p.conn().has_pending_writes());

  ASSERT_TRUE(p.conn().FlushWrites().ok());
  EXPECT_EQ(0u, p.conn().outbox_bytes());
  EXPECT_FALSE(p.conn().has_pending_writes());

  const std::string wire = p.PeerRecvAll();
  EXPECT_EQ(std::string(8, 'h') + std::string(100, 'p') + std::string(8, 'H') +
                std::string(40, 'f'),
            wire);
}

TEST(NetConnTest, OverOutboxBudgetAndManyBuffers) {
  // More buffers than one sendmsg gathers (kMaxFlushIovecs = 64): the flush
  // loop must issue several gathers and still deliver every byte in order.
  ConnPair p(/*max_outbox_bytes=*/64);
  std::string expect;
  for (int i = 0; i < 100; ++i) {
    std::string frame = PatternString(static_cast<size_t>(i) * 7, 7);
    expect += frame;
    p.conn().QueueFrame(std::move(frame));
  }
  EXPECT_EQ(700u, p.conn().outbox_bytes());
  EXPECT_TRUE(p.conn().over_outbox_budget());

  ASSERT_TRUE(p.conn().FlushWrites().ok());
  EXPECT_EQ(0u, p.conn().outbox_bytes());
  EXPECT_FALSE(p.conn().over_outbox_budget());
  EXPECT_EQ(expect, p.PeerRecvAll());
}

// Clamps every send to a fixed byte count, so a frame is forced through the
// socket in slivers and partial-progress bookkeeping (front_offset_, the
// iovec trim) is exercised on every call.
class ClampSendHooks : public NetHooks {
 public:
  explicit ClampSendHooks(size_t clamp) : clamp_(clamp) {}
  Status PreSend(int fd, size_t* n) override {
    ++calls_;
    *n = std::min(*n, clamp_);
    return Status::Ok();
  }
  int calls() const { return calls_; }

 private:
  size_t clamp_;
  int calls_ = 0;
};

TEST(NetConnTest, PartialWritesAcrossFlushes) {
  ConnPair p;
  ClampSendHooks clamp(/*clamp=*/7);
  ScopedNetHooks scoped(&clamp);

  const std::string header(8, 'h');
  const std::string payload = PatternString(0, 95);
  p.conn().QueueFrameParts(header, payload);
  ASSERT_EQ(103u, p.conn().outbox_bytes());

  // One FlushWrites drains everything in 7-byte slivers — 103 bytes is 15
  // sends — and the accounting lands on exactly zero.
  ASSERT_TRUE(p.conn().FlushWrites().ok());
  EXPECT_EQ(0u, p.conn().outbox_bytes());
  EXPECT_FALSE(p.conn().has_pending_writes());
  EXPECT_GE(clamp.calls(), 15);
  EXPECT_EQ(header + payload, p.PeerRecvAll());
}

// Clamps every send to zero: the socket accepts nothing, forever.
class StallAllSendsHooks : public NetHooks {
 public:
  Status PreSend(int fd, size_t* n) override {
    ++calls_;
    *n = 0;
    return Status::Ok();
  }
  int calls() const { return calls_; }

 private:
  int calls_ = 0;
};

TEST(NetConnTest, ZeroProgressSendIsWouldBlockNotASpin) {
  ConnPair p;
  StallAllSendsHooks stall;
  ScopedNetHooks scoped(&stall);

  p.conn().QueueFrameParts(std::string(8, 'h'), std::string(32, 'p'));
  // The stall persists across retries, so a FlushWrites that treated zero
  // progress as "try again" would loop forever. It must instead return Ok
  // after a single probe, leaving the outbox intact for the next writable
  // event.
  ASSERT_TRUE(p.conn().FlushWrites().ok());
  EXPECT_EQ(1, stall.calls());
  EXPECT_TRUE(p.conn().has_pending_writes());
  EXPECT_EQ(40u, p.conn().outbox_bytes());
}

TEST(NetConnTest, FlushRecoversAfterOneShotStall) {
  // Same regression through the real chaos hook: FaultInjectionSocket's
  // one-shot StallSendAt clamps the next send to 0 bytes; the flush must
  // report would-block, keep the frame queued, and deliver it on the retry.
  ConnPair p;
  FaultInjectionSocket faults;
  ScopedNetHooks scoped(&faults);

  const std::string header(8, 'h');
  const std::string payload = PatternString(3, 64);
  p.conn().QueueFrameParts(header, payload);

  faults.StallSendAt(0);  // the very next send
  ASSERT_TRUE(p.conn().FlushWrites().ok());
  EXPECT_EQ(1, faults.injected_short_ios());
  EXPECT_TRUE(p.conn().has_pending_writes());
  EXPECT_EQ(72u, p.conn().outbox_bytes());
  EXPECT_EQ("", p.PeerRecvAll());

  // Next writable event: the stall was one-shot, the frame goes through.
  ASSERT_TRUE(p.conn().FlushWrites().ok());
  EXPECT_FALSE(p.conn().has_pending_writes());
  EXPECT_EQ(0u, p.conn().outbox_bytes());
  EXPECT_EQ(header + payload, p.PeerRecvAll());
}

}  // namespace
}  // namespace net
}  // namespace flowkv
