// Checkpoint/restore tests (paper §8 fault tolerance): a snapshot taken with
// CheckpointTo and reopened with RestoreFrom must behave exactly like the
// original store — same data, same fetch-and-remove semantics, same ETT
// metadata (AUR prefetching still works after restore).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/flowkv/aar_store.h"
#include "src/flowkv/aur_store.h"
#include "src/flowkv/flowkv_store.h"
#include "src/flowkv/rmw_store.h"
#include "src/backends/flowkv_backend.h"
#include "src/backends/memory_backend.h"
#include "src/nexmark/aggregates.h"
#include "src/spe/pipeline.h"
#include "src/spe/window_operator.h"

namespace flowkv {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("ckpt_src");
    ckpt_ = MakeTempDir("ckpt_snap");
    restored_ = MakeTempDir("ckpt_dst");
  }
  void TearDown() override {
    RemoveDirRecursively(dir_).IgnoreError();
    RemoveDirRecursively(ckpt_).IgnoreError();
    RemoveDirRecursively(restored_).IgnoreError();
  }

  std::string dir_, ckpt_, restored_;
};

TEST_F(CheckpointTest, RmwRoundTrip) {
  FlowKvOptions options;
  options.write_buffer_bytes = 512;  // force some state onto disk
  std::unique_ptr<RmwStore> store;
  ASSERT_TRUE(RmwStore::Open(dir_, options, &store).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), Window(0, 100),
                           "acc" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store->Remove("k0", Window(0, 100)).ok());
  ASSERT_TRUE(store->CheckpointTo(ckpt_).ok());

  // Post-checkpoint mutations must NOT appear in the restored store.
  ASSERT_TRUE(store->Put("k1", Window(0, 100), "mutated-after").ok());

  std::unique_ptr<RmwStore> restored;
  ASSERT_TRUE(RmwStore::RestoreFrom(ckpt_, restored_, options, &restored).ok());
  std::string acc;
  EXPECT_TRUE(restored->Get("k0", Window(0, 100), &acc).IsNotFound());
  ASSERT_TRUE(restored->Get("k1", Window(0, 100), &acc).ok());
  EXPECT_EQ(acc, "acc1");  // snapshot isolation
  for (int i = 2; i < 200; ++i) {
    ASSERT_TRUE(restored->Get("k" + std::to_string(i), Window(0, 100), &acc).ok()) << i;
    EXPECT_EQ(acc, "acc" + std::to_string(i));
  }
  // The restored store is fully writable.
  ASSERT_TRUE(restored->Put("new", Window(0, 100), "x").ok());
  ASSERT_TRUE(restored->Get("new", Window(0, 100), &acc).ok());
}

TEST_F(CheckpointTest, AurRoundTripKeepsEttMetadata) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1;  // everything flushes
  options.read_batch_ratio = 0.5;
  std::unique_ptr<AurStore> store;
  ASSERT_TRUE(
      AurStore::Open(dir_, options, std::make_unique<SessionEttPredictor>(100), &store).ok());
  for (int i = 0; i < 50; ++i) {
    Window w(i * 1000, i * 1000 + 100);
    ASSERT_TRUE(store->Append("k" + std::to_string(i), "v" + std::to_string(i), w,
                              i * 1000).ok());
  }
  // Consume a few so the snapshot compacts their segments away.
  std::vector<std::string> values;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store->Get("k" + std::to_string(i), Window(i * 1000, i * 1000 + 100),
                           &values).ok());
  }
  ASSERT_TRUE(store->CheckpointTo(ckpt_).ok());

  std::unique_ptr<AurStore> restored;
  ASSERT_TRUE(AurStore::RestoreFrom(ckpt_, restored_, options,
                                    std::make_unique<SessionEttPredictor>(100), &restored)
                  .ok());
  // Consumed windows stay consumed; survivors are intact.
  EXPECT_TRUE(restored->Get("k3", Window(3000, 3100), &values).IsNotFound());
  ASSERT_TRUE(restored->Get("k10", Window(10000, 10100), &values).ok());
  EXPECT_EQ(values, (std::vector<std::string>{"v10"}));
  // ETT metadata survived: reading the next window by trigger order batches
  // the following ones into the prefetch buffer.
  ASSERT_TRUE(restored->Get("k11", Window(11000, 11100), &values).ok());
  EXPECT_GT(restored->PrefetchBufferEntries(), 0u);
  // And the restored store keeps accepting appends + reads.
  ASSERT_TRUE(restored->Append("fresh", "x", Window(0, 100), 5).ok());
  ASSERT_TRUE(restored->Get("fresh", Window(0, 100), &values).ok());
}

TEST_F(CheckpointTest, AarRoundTrip) {
  FlowKvOptions options;
  options.write_buffer_bytes = 256;
  std::unique_ptr<AarStore> store;
  ASSERT_TRUE(AarStore::Open(dir_, options, &store).ok());
  Window w1(0, 100), w2(100, 200);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Append("k" + std::to_string(i % 7), "w1-" + std::to_string(i), w1).ok());
    ASSERT_TRUE(store->Append("k" + std::to_string(i % 7), "w2-" + std::to_string(i), w2).ok());
  }
  ASSERT_TRUE(store->CheckpointTo(ckpt_).ok());

  std::unique_ptr<AarStore> restored;
  ASSERT_TRUE(AarStore::RestoreFrom(ckpt_, restored_, options, &restored).ok());
  int total = 0;
  while (true) {
    std::vector<WindowChunkEntry> chunk;
    bool done = false;
    ASSERT_TRUE(restored->GetWindowChunk(w1, &chunk, &done).ok());
    if (done) {
      break;
    }
    for (const auto& entry : chunk) {
      total += static_cast<int>(entry.values.size());
    }
  }
  EXPECT_EQ(total, 100);
}

TEST_F(CheckpointTest, CompositeRoundTripAndPatternGuard) {
  OperatorStateSpec spec;
  spec.name = "op";
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = true;
  FlowKvOptions options;
  options.num_partitions = 3;
  std::unique_ptr<FlowKvStore> store;
  ASSERT_TRUE(FlowKvStore::Open(dir_, options, spec, &store).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i), Window(0, 100),
                           std::to_string(i * 3)).ok());
  }
  ASSERT_TRUE(store->CheckpointTo(ckpt_).ok());

  // Restoring under a different pattern must be rejected.
  OperatorStateSpec wrong = spec;
  wrong.incremental = false;
  std::unique_ptr<FlowKvStore> bad;
  EXPECT_FALSE(FlowKvStore::RestoreFrom(ckpt_, MakeTempDir("ckpt_bad"), options, wrong,
                                        &bad).ok());

  std::unique_ptr<FlowKvStore> restored;
  ASSERT_TRUE(FlowKvStore::RestoreFrom(ckpt_, restored_, options, spec, &restored).ok());
  EXPECT_EQ(restored->num_partitions(), 3);
  std::string acc;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(restored->Get("key" + std::to_string(i), Window(0, 100), &acc).ok()) << i;
    EXPECT_EQ(acc, std::to_string(i * 3));
  }
}

TEST_F(CheckpointTest, RepeatedCheckpointsAreIndependent) {
  FlowKvOptions options;
  std::unique_ptr<RmwStore> store;
  ASSERT_TRUE(RmwStore::Open(dir_, options, &store).ok());
  ASSERT_TRUE(store->Put("k", Window(0, 100), "v1").ok());
  ASSERT_TRUE(store->CheckpointTo(ckpt_).ok());
  ASSERT_TRUE(store->Put("k", Window(0, 100), "v2").ok());
  const std::string ckpt2 = MakeTempDir("ckpt_snap2");
  ASSERT_TRUE(store->CheckpointTo(ckpt2).ok());

  std::unique_ptr<RmwStore> r1, r2;
  ASSERT_TRUE(RmwStore::RestoreFrom(ckpt_, restored_, options, &r1).ok());
  const std::string restored2 = MakeTempDir("ckpt_dst2");
  ASSERT_TRUE(RmwStore::RestoreFrom(ckpt2, restored2, options, &r2).ok());
  std::string acc;
  ASSERT_TRUE(r1->Get("k", Window(0, 100), &acc).ok());
  EXPECT_EQ(acc, "v1");
  ASSERT_TRUE(r2->Get("k", Window(0, 100), &acc).ok());
  EXPECT_EQ(acc, "v2");
  RemoveDirRecursively(ckpt2).IgnoreError();
  RemoveDirRecursively(restored2).IgnoreError();
}

TEST_F(CheckpointTest, PipelineCheckpointSnapshotsEveryOperator) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1024;
  FlowKvBackendFactory factory(dir_, options);
  Pipeline pipeline;
  WindowOperatorConfig config;
  config.name = "count";
  config.assigner = std::make_shared<TumblingWindowAssigner>(1'000'000);
  config.aggregate = std::make_shared<CountAggregate>();
  pipeline.AddOperator(std::make_unique<WindowOperator>(std::move(config)));

  class NullSink : public Collector {
   public:
    Status Emit(const Event&) override { return Status::Ok(); }
  } sink;
  ASSERT_TRUE(pipeline.Open(&factory, 0, &sink).ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pipeline.Process(Event("k" + std::to_string(i % 40), "x", i)).ok());
  }
  std::string epoch_dir;
  EXPECT_TRUE(Pipeline::LatestCheckpoint(ckpt_, &epoch_dir).IsNotFound());
  ASSERT_TRUE(pipeline.Checkpoint(ckpt_).ok());
  // CURRENT resolves to the committed epoch, which holds one FlowKV snapshot
  // per stateful operator handle, restorable through the store-level API.
  ASSERT_TRUE(Pipeline::LatestCheckpoint(ckpt_, &epoch_dir).ok());
  EXPECT_EQ(epoch_dir, JoinPath(ckpt_, "epoch_0"));
  std::unique_ptr<FlowKvStore> restored;
  OperatorStateSpec spec;
  spec.name = "count";
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = true;
  ASSERT_TRUE(FlowKvStore::RestoreFrom(JoinPath(epoch_dir, "op0/h0"), restored_, options, spec,
                                       &restored)
                  .ok());
  std::string acc;
  ASSERT_TRUE(restored->Get("k0", Window(0, 1'000'000), &acc).ok());

  // A second checkpoint lands in a fresh epoch and flips CURRENT.
  ASSERT_TRUE(pipeline.Checkpoint(ckpt_).ok());
  ASSERT_TRUE(Pipeline::LatestCheckpoint(ckpt_, &epoch_dir).ok());
  EXPECT_EQ(epoch_dir, JoinPath(ckpt_, "epoch_1"));
}

TEST_F(CheckpointTest, MemoryBackendReportsUnimplemented) {
  MemoryBackendFactory factory;
  std::unique_ptr<StateBackend> backend;
  ASSERT_TRUE(factory.CreateBackend(0, "op", &backend).ok());
  EXPECT_EQ(backend->CheckpointTo(ckpt_).code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace flowkv
