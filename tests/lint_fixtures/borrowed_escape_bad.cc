// Lint fixture — NOT compiled. Seeded violations for the
// flowkv-borrowed-slice-escape check; every line marked BAD below must
// produce exactly one diagnostic (see borrowed_escape_bad.expected).
//
// The shapes mirror src/net/server.cc: a RequestMessage filled by
// DecodeRequestBorrowed aliases the connection rx buffer, so storing,
// queueing, or capturing it without MaterializeRefs() is a use-after-free
// in waiting.

#include "src/net/protocol.h"

namespace flowkv {

class Session {
 public:
  void QueueWithoutMaterialize(Slice payload);
  void StoreIntoMember(Slice payload);
  void CaptureInLambda(Slice payload);
  void MaterializeTooLate(Slice payload);

 private:
  std::deque<RequestMessage> deferred_;
  RequestMessage last_request_;
  std::function<void()> replay_;
};

// Queued into a container that outlives the rx buffer.
void Session::QueueWithoutMaterialize(Slice payload) {
  RequestMessage request;
  const Status s = DecodeRequestBorrowed(payload, &request);
  if (!s.ok()) {
    return;
  }
  deferred_.push_back(std::move(request));  // BAD: queued while borrowed
}

// Stored into a long-lived member field.
void Session::StoreIntoMember(Slice payload) {
  RequestMessage request;
  if (!DecodeRequestBorrowed(payload, &request).ok()) {
    return;
  }
  last_request_ = std::move(request);  // BAD: stored while borrowed
}

// Captured by a lambda that runs after the frame is consumed. Capturing by
// copy does not help: copying a RequestMessage copies its borrowed Slices.
void Session::CaptureInLambda(Slice payload) {
  RequestMessage request;
  const Status s = DecodeRequestBorrowed(payload, &request);
  PostToReactor([request]() { Replay(request); });  // BAD: captured while borrowed
}

// MaterializeRefs() after the escape does not help: the queue already holds
// the borrowed slices.
void Session::MaterializeTooLate(Slice payload) {
  RequestMessage request;
  const Status s = DecodeRequestBorrowed(payload, &request);
  deferred_.push_back(std::move(request));  // BAD: materialized too late
  for (OpRequest& op : deferred_.back().ops) {
    op.MaterializeRefs();
  }
}

}  // namespace flowkv
