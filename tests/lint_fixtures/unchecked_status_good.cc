// Lint fixture — NOT compiled. Patterns the flowkv-unchecked-status check
// must ACCEPT: this file lints clean (unchecked_status_good.expected is
// empty).

namespace flowkv {

class Status {
 public:
  bool ok() const;
  void IgnoreError() const;
};

Status DoThing();

// `Add` is declared with both a Status and a non-Status return type, so it is
// ambiguous at token level and never flagged — [[nodiscard]] on Status is the
// compiler-side backstop for such names.
void Add(int delta);

class Counter {
 public:
  Status Add(long delta);
};

Status Forward() {
  return DoThing();  // ok: returned
}

void Caller(Counter* counter) {
  Status s = DoThing();  // ok: assigned
  if (!DoThing().ok()) {  // ok: checked
    return;
  }
  DoThing().IgnoreError();  // ok: explicit, documented drop
  FLOWKV_RETURN_IF_ERROR(DoThing());  // ok: macro consumes the status
  counter->Add(1);  // ok: ambiguous name (see above)
  DoThing();  // NOLINT(flowkv-unchecked-status) fixture: suppression works
  (void)s;
}

}  // namespace flowkv
