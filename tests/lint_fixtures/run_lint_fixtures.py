#!/usr/bin/env python3
"""Asserts flowkv_lint's exact diagnostics over the fixture corpus.

Each `<name>.cc` fixture has a sibling `<name>.expected` holding the exact
stdout the lint must produce for it (empty file = must lint clean). Fixtures
are linted one at a time from this directory so diagnostics carry bare file
names and the .expected files stay path-independent.

Usage: run_lint_fixtures.py <path-to-flowkv_lint> [fixture-dir]
Exit:  0 all fixtures match, 1 any mismatch, 2 usage/setup error.
"""
import pathlib
import subprocess
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    lint = pathlib.Path(sys.argv[1]).resolve()
    fixture_dir = (
        pathlib.Path(sys.argv[2]) if len(sys.argv) > 2
        else pathlib.Path(__file__).resolve().parent
    )
    if not lint.is_file():
        print(f"lint binary not found: {lint}", file=sys.stderr)
        return 2
    fixtures = sorted(fixture_dir.glob("*.cc"))
    if not fixtures:
        print(f"no fixtures under {fixture_dir}", file=sys.stderr)
        return 2

    failures = 0
    for src in fixtures:
        expected_path = src.with_suffix(".expected")
        if not expected_path.exists():
            print(f"FAIL {src.name}: missing {expected_path.name}", file=sys.stderr)
            failures += 1
            continue
        expected = expected_path.read_text()
        proc = subprocess.run(
            [str(lint), src.name],
            cwd=fixture_dir,
            capture_output=True,
            text=True,
        )
        want_rc = 1 if expected.strip() else 0
        ok = proc.stdout == expected and proc.returncode == want_rc
        print(f"{'ok  ' if ok else 'FAIL'} {src.name}")
        if not ok:
            failures += 1
            sys.stderr.write(
                f"--- {src.name}: expected (exit {want_rc}):\n{expected}"
                f"--- got (exit {proc.returncode}):\n{proc.stdout}{proc.stderr}"
            )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
