// Lint fixture — NOT compiled. Seeded violations for the
// flowkv-unchecked-status check; every line marked BAD below must produce
// exactly one diagnostic (see unchecked_status_bad.expected).

namespace flowkv {

class Status {
 public:
  bool ok() const;
  void IgnoreError() const;
};

Status DoThing();
Status Flush(int fd);
Store* MakeStore();

class Store {
 public:
  Status Open(const char* path);
  Status Close();
};

void Caller(Store* store) {
  DoThing();          // BAD: free-function result dropped
  store->Open("x");   // BAD: member-call result dropped
  store->Close();     // BAD: member-call result dropped
  Flush(3);           // BAD: result dropped despite argument use
  MakeStore()->Open("y");  // BAD: trailing call in a chain dropped
}

}  // namespace flowkv
