// Lint fixture — NOT compiled. Seeded violations for the
// flowkv-borrowed-slice-escape check on the prefetch push path: a
// kEttRegister frame decoded with DecodeRequestBorrowed aliases the
// connection rx buffer, so handing it to the shard scheduler's task queue,
// stashing it for a later push cycle, or capturing it in a deferred reactor
// task must materialize first. Every line marked BAD below must produce
// exactly one diagnostic (see push_register_escape_bad.expected).

#include "src/net/prefetch.h"
#include "src/net/protocol.h"

namespace flowkv {

class PushDispatcher {
 public:
  void QueueRegisterToShard(Slice payload);
  void StashForNextPushCycle(Slice payload);
  void DeferRegisterToReactor(Slice payload);

 private:
  std::deque<RequestMessage> shard_tasks_;
  RequestMessage pending_register_;
};

// Cross-thread handoff: the owning shard drains this queue long after the
// connection consumed the frame.
void PushDispatcher::QueueRegisterToShard(Slice payload) {
  RequestMessage request;
  const Status s = DecodeRequestBorrowed(payload, &request);
  if (!s.ok()) {
    return;
  }
  shard_tasks_.push_back(std::move(request));  // BAD: queued while borrowed
}

// Held across push cycles in a member field.
void PushDispatcher::StashForNextPushCycle(Slice payload) {
  RequestMessage request;
  if (!DecodeRequestBorrowed(payload, &request).ok()) {
    return;
  }
  pending_register_ = std::move(request);  // BAD: stored while borrowed
}

// Deferred onto the shard's reactor; the capture copies borrowed Slices.
void PushDispatcher::DeferRegisterToReactor(Slice payload) {
  RequestMessage request;
  const Status s = DecodeRequestBorrowed(payload, &request);
  PostToReactor([request]() { RegisterSubscriber(request); });  // BAD: captured while borrowed
}

}  // namespace flowkv
