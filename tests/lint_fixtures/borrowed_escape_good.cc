// Lint fixture — NOT compiled. Patterns the flowkv-borrowed-slice-escape
// check must ACCEPT: this file lints clean (borrowed_escape_good.expected is
// empty).

#include "src/net/protocol.h"

namespace flowkv {

class Session {
 public:
  void MaterializeThenQueue(Slice payload);
  void InlineHandoff(Slice payload);
  void ReadOnlyUse(Slice payload);
  void DocumentedSuppression(Slice payload);

 private:
  std::deque<RequestMessage> deferred_;
  size_t op_count_ = 0;
};

// The canonical pattern: own every field, then queue.
void Session::MaterializeThenQueue(Slice payload) {
  RequestMessage request;
  const Status s = DecodeRequestBorrowed(payload, &request);
  if (!s.ok()) {
    return;
  }
  for (OpRequest& op : request.ops) {
    op.MaterializeRefs();
  }
  deferred_.push_back(std::move(request));  // ok: materialized above
}

// Passing the message as a call argument — including std::move — keeps the
// handoff on this stack, above the rx buffer's Consume().
void Session::InlineHandoff(Slice payload) {
  RequestMessage request;
  if (!DecodeRequestBorrowed(payload, &request).ok()) {
    return;
  }
  HandleRequest(std::move(request));  // ok: inline dispatch
}

// Plain reads of a borrowed message never escape.
void Session::ReadOnlyUse(Slice payload) {
  RequestMessage request;
  const Status s = DecodeRequestBorrowed(payload, &request);
  if (request.ops.size() > 1) {
    op_count_ += request.ops.size();
  }
}

// A deliberate escape can be suppressed inline; every real-tree suppression
// must be listed in docs/STATIC_ANALYSIS.md.
void Session::DocumentedSuppression(Slice payload) {
  RequestMessage request;
  const Status s = DecodeRequestBorrowed(payload, &request);
  // Safe here: the queue is drained before Consume() on this same stack.
  deferred_.push_back(std::move(request));  // NOLINT(flowkv-borrowed-slice-escape)
}

}  // namespace flowkv
