// Lint fixture — NOT compiled. Push-path patterns the
// flowkv-borrowed-slice-escape check must ACCEPT: this file lints clean
// (push_register_escape_good.expected is empty).

#include "src/net/prefetch.h"
#include "src/net/protocol.h"

namespace flowkv {

class PushDispatcher {
 public:
  void MaterializeThenQueue(Slice payload);
  void InlineRegister(Slice payload);
  void QueueOwnedPushFrame(net::FiredPush fired);

 private:
  std::deque<RequestMessage> shard_tasks_;
  std::deque<std::string> outbox_;
};

// The canonical cross-thread handoff: own every field, then queue to the
// shard.
void PushDispatcher::MaterializeThenQueue(Slice payload) {
  RequestMessage request;
  const Status s = DecodeRequestBorrowed(payload, &request);
  if (!s.ok()) {
    return;
  }
  for (OpRequest& op : request.ops) {
    op.MaterializeRefs();
  }
  shard_tasks_.push_back(std::move(request));  // ok: materialized above
}

// Registering inline on this stack never outlives the rx buffer.
void PushDispatcher::InlineRegister(Slice payload) {
  RequestMessage request;
  if (!DecodeRequestBorrowed(payload, &request).ok()) {
    return;
  }
  RegisterSubscriber(std::move(request));  // ok: inline dispatch
}

// A fired push's chunk is the scheduler's own shadow copy (owned strings,
// src/net/prefetch.h) — encoding and queueing it borrows nothing from any rx
// buffer, so the outbox handoff is out of the borrow contract entirely.
void PushDispatcher::QueueOwnedPushFrame(net::FiredPush fired) {
  std::string frame;
  EncodePushChunk(fired, &frame);
  outbox_.push_back(std::move(frame));  // ok: owned payload
}

}  // namespace flowkv
