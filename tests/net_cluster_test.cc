// Automated failover: lease-based primary election, epoch-fenced writes,
// and split-brain-safe promotion (docs/NETWORK.md "Cluster roles, epochs,
// and failover").
//
// Covered here, on top of the plain replication/failover suite
// (net_failover_test.cc):
//   - the cluster epoch is durable (data_dir/CLUSTER_EPOCH) and only ever
//     increases; fencing and observed epochs are runtime-only;
//   - a standby rejects every mutating client batch with kFencedOff until
//     it is promoted (kClusterAdmin "promote" / Server::Promote), and a
//     "fence" neutralizes it again;
//   - a client that has adopted a newer epoch fences a stale former primary
//     on first contact — the stale server then rejects EVERY write, so two
//     servers never accept writes in the same epoch;
//   - a killed primary is detected by the standby's lease and the standby
//     self-promotes (ReplicaPuller election), clients converge, and a
//     NEXMark query that loses its primary mid-run still matches the
//     embedded reference exactly (zero acked-write loss);
//   - a standby killed and restarted mid-run re-subscribes, receives a
//     fresh snapshot, and carries every acked write;
//   - a crash at ANY fsync of the promotion's epoch commit never regresses
//     the epoch or diverges the store on restart (FaultInjectionFs sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/backends/remote_backend.h"
#include "src/common/env.h"
#include "src/common/fault_injection_fs.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/net/replica.h"
#include "src/net/server.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"
#include "src/spe/job_runner.h"

namespace flowkv {
namespace {

using Results = std::vector<std::tuple<int64_t, std::string, std::string>>;

// Election knobs shared by the fixture: a short lease so a dead primary is
// detected quickly, and the highest stagger priority so the (single)
// standby promotes on its first election round.
constexpr int kLeaseMs = 500;
constexpr int kStaggerMs = 50;
constexpr int kPriority = 9;

OperatorStateSpec RmwSpec(const std::string& name) {
  OperatorStateSpec spec;
  spec.name = name;
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = true;
  spec.window_size_ms = 1000;
  return spec;
}

class ResultCollector : public Collector {
 public:
  Status Emit(const Event& event) override {
    results.emplace_back(event.timestamp, event.key, event.value);
    return Status::Ok();
  }
  Results results;
};

struct RunOutcome {
  Status status;
  Results results;
};

// Runs `query`, invoking `hook` once after `hook_at_event` events have been
// processed (0 = never) — the hook kills a primary or bounces the standby.
RunOutcome RunQuery(const std::string& query, StateBackendFactory* factory,
                    const NexmarkConfig& nexmark, const QueryParams& params,
                    int hook_at_event = 0,
                    const std::function<void()>& hook = nullptr) {
  RunOutcome outcome;
  auto collector = std::make_shared<ResultCollector>();
  Pipeline pipeline;
  outcome.status = BuildNexmarkQuery(query, params, &pipeline);
  if (!outcome.status.ok()) {
    return outcome;
  }
  outcome.status = pipeline.Open(factory, 0, collector.get());
  if (!outcome.status.ok()) {
    return outcome;
  }
  NexmarkSource source(nexmark, 0);
  Event event;
  int64_t max_ts = 0;
  int since_watermark = 0;
  int processed = 0;
  while (source.Next(&event)) {
    if (hook_at_event > 0 && ++processed == hook_at_event && hook) {
      hook();
    }
    outcome.status = pipeline.Process(event);
    if (!outcome.status.ok()) {
      return outcome;
    }
    max_ts = event.timestamp;
    if (++since_watermark >= 128) {
      since_watermark = 0;
      outcome.status = pipeline.AdvanceWatermark(max_ts);
      if (!outcome.status.ok()) {
        return outcome;
      }
    }
  }
  outcome.status = pipeline.Finish();
  outcome.results = collector->results;
  std::sort(outcome.results.begin(), outcome.results.end());
  return outcome;
}

int64_t Field(const std::vector<std::pair<std::string, int64_t>>& fields,
              const std::string& name) {
  for (const auto& [key, value] : fields) {
    if (key == name) {
      return value;
    }
  }
  return -1;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Epoch durability and role mechanics (single server, no replication).

TEST(ClusterEpochTest, EpochPersistsAcrossRestartAndNeverRegresses) {
  const std::string dir = MakeTempDir("cluster_epoch");
  net::ServerOptions opts;
  opts.num_shards = 2;
  opts.data_dir = JoinPath(dir, "data");
  opts.checkpoint_dir = JoinPath(dir, "ckpt");

  {
    std::unique_ptr<net::Server> server;
    ASSERT_TRUE(net::Server::Start(opts, &server).ok());
    EXPECT_EQ(server->cluster_epoch(), 1u);
    EXPECT_EQ(server->cluster_role(), net::kRolePrimary);
    ASSERT_TRUE(server->Promote(5).ok());
    EXPECT_EQ(server->cluster_epoch(), 5u);
    EXPECT_FALSE(server->Promote(5).ok()) << "same-epoch promote must be rejected";
    EXPECT_FALSE(server->Promote(3).ok()) << "epoch regression must be rejected";
    EXPECT_EQ(server->cluster_epoch(), 5u);
    server->Stop();
  }

  // The promoted epoch survives a restart (data_dir/CLUSTER_EPOCH).
  {
    std::unique_ptr<net::Server> server;
    ASSERT_TRUE(net::Server::Start(opts, &server).ok());
    EXPECT_EQ(server->cluster_epoch(), 5u);
    EXPECT_EQ(server->cluster_role(), net::kRolePrimary);
    server->Stop();
  }

  // The role is NOT persisted: it comes from start_as_standby on every
  // start, and fencing is runtime-only (an operator decision survives only
  // as long as the process).
  opts.start_as_standby = true;
  {
    std::unique_ptr<net::Server> server;
    ASSERT_TRUE(net::Server::Start(opts, &server).ok());
    EXPECT_EQ(server->cluster_epoch(), 5u);
    EXPECT_EQ(server->cluster_role(), net::kRoleStandby);
    server->Fence();
    EXPECT_EQ(server->cluster_role(), net::kRoleFenced);
    EXPECT_FALSE(server->Promote(6).ok()) << "a fenced server must not promote";
    server->Stop();
  }
  {
    std::unique_ptr<net::Server> server;
    ASSERT_TRUE(net::Server::Start(opts, &server).ok());
    EXPECT_EQ(server->cluster_role(), net::kRoleStandby) << "fencing leaked across restart";
    server->Stop();
  }

  RemoveDirRecursively(dir).IgnoreError();
}

TEST(ClusterEpochTest, StandbyFencesClientWritesUntilPromoted) {
  const std::string dir = MakeTempDir("cluster_standby_fence");
  net::ServerOptions opts;
  opts.num_shards = 2;
  opts.data_dir = JoinPath(dir, "data");
  opts.checkpoint_dir = JoinPath(dir, "ckpt");
  opts.start_as_standby = true;
  std::unique_ptr<net::Server> server;
  ASSERT_TRUE(net::Server::Start(opts, &server).ok());

  net::ClientOptions copts;
  copts.port = server->port();
  copts.request_timeout_ms = 5'000;
  copts.max_retries = 2;
  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(copts, &client).ok());

  // Mutating batches are rejected whole, pre-dispatch.
  const Window w(0, 1000);
  uint64_t handle = 0;
  StorePattern pattern;
  Status st = client->OpenStore("cluster.sf.h0", RmwSpec("sf"), &handle, &pattern);
  EXPECT_TRUE(st.IsFencedOff()) << st.ToString();

  // The cluster view is legal on every role.
  std::vector<std::pair<std::string, int64_t>> fields;
  ASSERT_TRUE(client->ClusterInfo(&fields).ok());
  EXPECT_EQ(Field(fields, net::kStatClusterRole), net::kRoleStandby);
  EXPECT_EQ(Field(fields, net::kStatClusterEpoch), 1);

  // Promote over the wire (target_epoch 0 = current + 1): writes flow.
  ASSERT_TRUE(client->ClusterAdmin("promote", 0, &fields).ok());
  EXPECT_EQ(Field(fields, net::kStatClusterRole), net::kRolePrimary);
  EXPECT_EQ(Field(fields, net::kStatClusterEpoch), 2);
  ASSERT_TRUE(client->OpenStore("cluster.sf.h0", RmwSpec("sf"), &handle, &pattern).ok());
  ASSERT_TRUE(client->RmwPut(handle, "k0", w, "v0").ok());
  ASSERT_TRUE(client->Flush().ok());
  std::string value;
  ASSERT_TRUE(client->RmwGet(handle, "k0", w, &value).ok());
  EXPECT_EQ(value, "v0");

  // A promote to an epoch that does not exceed the current one is refused.
  EXPECT_FALSE(client->ClusterAdmin("promote", 2, nullptr).ok());

  // An admin fence neutralizes the server again.
  ASSERT_TRUE(client->ClusterAdmin("fence", 0, &fields).ok());
  EXPECT_EQ(Field(fields, net::kStatClusterRole), net::kRoleFenced);
  st = client->RmwPut(handle, "k1", w, "v1");
  if (st.ok()) {
    st = client->Flush();
  }
  EXPECT_TRUE(st.IsFencedOff()) << st.ToString();

  client.reset();
  server->Stop();
  RemoveDirRecursively(dir).IgnoreError();
}

// A client that adopted epoch 2 from one primary fences an epoch-1 primary
// on first contact: the stale server flips to kRoleFenced and rejects every
// later write, from any client — the split-brain half is neutralized.
TEST(ClusterEpochTest, HigherEpochClientFencesStalePrimary) {
  const std::string dir = MakeTempDir("cluster_stale_fence");
  net::ServerOptions aopts;
  aopts.num_shards = 2;
  aopts.data_dir = JoinPath(dir, "a_data");
  aopts.checkpoint_dir = JoinPath(dir, "a_ckpt");
  std::unique_ptr<net::Server> stale;
  ASSERT_TRUE(net::Server::Start(aopts, &stale).ok());

  net::ServerOptions bopts;
  bopts.num_shards = 2;
  bopts.data_dir = JoinPath(dir, "b_data");
  bopts.checkpoint_dir = JoinPath(dir, "b_ckpt");
  std::unique_ptr<net::Server> fresh;
  ASSERT_TRUE(net::Server::Start(bopts, &fresh).ok());
  ASSERT_TRUE(fresh->Promote(2).ok());

  net::ClientOptions copts;
  copts.port = fresh->port();
  copts.standbys = {{"127.0.0.1", stale->port()}};
  copts.request_timeout_ms = 5'000;
  copts.max_retries = 2;
  copts.max_reconnect_attempts = 4;
  copts.reconnect_backoff_ms = 10;
  copts.reconnect_backoff_max_ms = 100;
  copts.jitter_seed = 7;
  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(copts, &client).ok());
  EXPECT_EQ(client->cluster_epoch(), 2u) << "client did not adopt the probe epoch";

  const Window w(0, 1000);
  uint64_t handle = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("cluster.hi.h0", RmwSpec("hi"), &handle, &pattern).ok());
  ASSERT_TRUE(client->RmwPut(handle, "a0", w, "va").ok());
  ASSERT_TRUE(client->Flush().ok());

  // Kill the epoch-2 primary: the client fails over to the epoch-1 server,
  // whose first sight of the stamped epoch fences it. No primary is left at
  // epoch >= 2, so the write must NOT be acknowledged anywhere.
  fresh->Stop();
  Status st = client->RmwPut(handle, "b0", w, "vb");
  if (st.ok()) {
    st = client->Flush();
  }
  EXPECT_FALSE(st.ok()) << "write acked with no live primary at the adopted epoch";
  ASSERT_TRUE(WaitFor([&] { return stale->cluster_role() == net::kRoleFenced; }, 3'000))
      << "stale primary never fenced itself";

  // Once fenced, EVERY write is rejected — even from a fresh client that
  // only ever saw epoch 1.
  net::ClientOptions dopts;
  dopts.port = stale->port();
  dopts.request_timeout_ms = 3'000;
  dopts.max_retries = 0;
  std::unique_ptr<net::Client> direct;
  ASSERT_TRUE(net::Client::Connect(dopts, &direct).ok());
  uint64_t dhandle = 0;
  st = direct->OpenStore("cluster.hi.h1", RmwSpec("hi"), &dhandle, &pattern);
  EXPECT_TRUE(st.IsFencedOff()) << st.ToString();

  direct.reset();
  client.reset();
  stale->Stop();
  RemoveDirRecursively(dir).IgnoreError();
}

// ---------------------------------------------------------------------------
// Automated failover: primary + standby + ReplicaPuller with a live lease.

class NetClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("net_cluster");

    popts_.num_shards = 2;
    popts_.data_dir = JoinPath(dir_, "primary_data");
    popts_.checkpoint_dir = JoinPath(dir_, "primary_ckpt");
    popts_.lease_ms = kLeaseMs;
    ASSERT_TRUE(net::Server::Start(popts_, &primary_).ok());

    sopts_.num_shards = 2;  // must match the primary for kRestoreStore fan-out
    sopts_.data_dir = JoinPath(dir_, "standby_data");
    sopts_.checkpoint_dir = JoinPath(dir_, "standby_ckpt");
    sopts_.start_as_standby = true;
    sopts_.lease_ms = kLeaseMs;
    sopts_.promotion_priority = kPriority;
    ASSERT_TRUE(net::Server::Start(sopts_, &standby_).ok());
  }

  void TearDown() override {
    if (puller_ != nullptr) {
      puller_->Stop();
    }
    if (standby_ != nullptr) {
      standby_->Stop();
    }
    if (primary_ != nullptr) {
      primary_->Stop();
    }
    RemoveDirRecursively(dir_).IgnoreError();
  }

  // Subscribes the standby to the primary and waits for the initial
  // snapshot. With `failover` the puller runs the lease/election protocol
  // and promotes the standby server through the Server::Promote hook.
  void StartPuller(bool failover) {
    net::ReplicaOptions ropts;
    ropts.primary_port = primary_->port();
    ropts.self_port = standby_->port();
    ropts.snapshot_dir = JoinPath(dir_, "standby_snapshot");
    ropts.resubscribe_backoff_ms = 50;
    ropts.resubscribe_backoff_max_ms = 200;
    ropts.jitter_seed = 17;
    if (failover) {
      ropts.lease_ms = kLeaseMs;
      ropts.heartbeat_ms = 100;
      ropts.promotion_priority = kPriority;
      ropts.promotion_stagger_ms = kStaggerMs;
      ropts.peers = {{"127.0.0.1", primary_->port()}, {"127.0.0.1", standby_->port()}};
      net::Server* standby = standby_.get();
      ropts.promote = [standby](uint64_t epoch) { return standby->Promote(epoch); };
      ropts.local_epoch = [standby]() { return standby->cluster_epoch(); };
    }
    ASSERT_TRUE(net::ReplicaPuller::Start(ropts, &puller_).ok());
    for (int i = 0; i < 200 && !puller_->snapshot_loaded(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_TRUE(puller_->snapshot_loaded()) << "standby never restored a snapshot";
  }

  // A client that can ride out a full election: the promotion takes roughly
  // lease + stagger, and every attempt in between is answered kFencedOff
  // (standby) or connection-reset (dead primary), both retried.
  net::ClientOptions ClusterClientOptions() {
    net::ClientOptions copts;
    copts.port = primary_->port();
    copts.standbys = {{"127.0.0.1", standby_->port()}};
    copts.request_timeout_ms = 60'000;
    copts.max_retries = 20;
    copts.max_reconnect_attempts = 8;
    copts.reconnect_backoff_ms = 10;
    copts.reconnect_backoff_max_ms = 300;
    copts.jitter_seed = 11;
    return copts;
  }

  std::string dir_;
  net::ServerOptions popts_;
  net::ServerOptions sopts_;
  std::unique_ptr<net::Server> primary_;
  std::unique_ptr<net::Server> standby_;
  std::unique_ptr<net::ReplicaPuller> puller_;
};

TEST_F(NetClusterTest, KilledPrimaryTriggersSelfPromotionAndFencesRevival) {
  StartPuller(/*failover=*/true);

  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(ClusterClientOptions(), &client).ok());
  const Window w(0, 1000);
  uint64_t handle = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("cluster.fo.h0", RmwSpec("fo"), &handle, &pattern).ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client->RmwPut(handle, "a" + std::to_string(i), w, "va").ok());
  }
  ASSERT_TRUE(client->Flush().ok());
  EXPECT_EQ(client->cluster_epoch(), 1u);

  // Kill the primary: the standby's lease expires, its election finds no
  // live primary, and it self-promotes under epoch 2. The bound is lease +
  // priority stagger + election polling, with generous sanitizer slack —
  // unsanitized this completes in well under two seconds.
  const int primary_port = primary_->port();
  const auto t0 = std::chrono::steady_clock::now();
  primary_->Stop();
  ASSERT_TRUE(WaitFor([&] { return puller_->promoted(); }, 20'000))
      << "standby never promoted itself";
  const int64_t elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
  EXPECT_LE(elapsed_ms, kLeaseMs + (10 - kPriority) * kStaggerMs + 10'000)
      << "promotion exceeded the lease bound";
  EXPECT_EQ(standby_->cluster_role(), net::kRolePrimary);
  EXPECT_EQ(standby_->cluster_epoch(), 2u);

  // The same client converges on the new primary and keeps the acked state.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client->RmwPut(handle, "b" + std::to_string(i), w, "vb").ok());
  }
  ASSERT_TRUE(client->Flush().ok());
  EXPECT_EQ(client->cluster_epoch(), 2u) << "client never adopted the new epoch";
  std::string value;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client->RmwGet(handle, "a" + std::to_string(i), w, &value).ok())
        << "acked pre-kill write a" << i << " lost across promotion";
    EXPECT_EQ(value, "va");
    ASSERT_TRUE(client->RmwGet(handle, "b" + std::to_string(i), w, &value).ok());
    EXPECT_EQ(value, "vb");
  }

  // Revive the dead primary on its old port and data dir. It comes back as
  // an epoch-1 primary (its CLUSTER_EPOCH was never bumped) — the two
  // "primaries" are in DIFFERENT epochs, which is exactly what makes the
  // split safe: the first epoch-2 request fences the stale one.
  net::ServerOptions ropts = popts_;
  ropts.port = primary_port;
  std::unique_ptr<net::Server> revived;
  ASSERT_TRUE(net::Server::Start(ropts, &revived).ok());
  EXPECT_EQ(revived->cluster_epoch(), 1u);
  EXPECT_EQ(revived->cluster_role(), net::kRolePrimary);
  EXPECT_NE(revived->cluster_epoch(), standby_->cluster_epoch())
      << "two servers accepting writes in the same epoch";

  // A client that learned epoch 2 from the new primary fences the revived
  // server the moment it falls back to it.
  net::ClientOptions lopts;
  lopts.port = standby_->port();
  lopts.standbys = {{"127.0.0.1", primary_port}};
  lopts.request_timeout_ms = 8'000;
  lopts.max_retries = 4;
  lopts.max_reconnect_attempts = 4;
  lopts.reconnect_backoff_ms = 10;
  lopts.reconnect_backoff_max_ms = 100;
  lopts.jitter_seed = 13;
  std::unique_ptr<net::Client> late;
  ASSERT_TRUE(net::Client::Connect(lopts, &late).ok());
  EXPECT_EQ(late->cluster_epoch(), 2u);
  uint64_t lhandle = 0;
  ASSERT_TRUE(late->OpenStore("cluster.fo.h0", RmwSpec("fo"), &lhandle, &pattern).ok());

  standby_->Stop();
  Status st = late->RmwPut(lhandle, "c0", w, "vc");
  if (st.ok()) {
    st = late->Flush();
  }
  EXPECT_FALSE(st.ok()) << "write acked by a stale primary";
  ASSERT_TRUE(WaitFor([&] { return revived->cluster_role() == net::kRoleFenced; }, 5'000))
      << "revived stale primary never fenced itself";

  // Fenced means fenced for everyone: a brand-new epoch-1 client is
  // rejected too.
  net::ClientOptions dopts;
  dopts.port = primary_port;
  dopts.request_timeout_ms = 3'000;
  dopts.max_retries = 0;
  std::unique_ptr<net::Client> direct;
  ASSERT_TRUE(net::Client::Connect(dopts, &direct).ok());
  uint64_t dhandle = 0;
  st = direct->OpenStore("cluster.fo.h1", RmwSpec("fo"), &dhandle, &pattern);
  EXPECT_TRUE(st.IsFencedOff()) << st.ToString();

  direct.reset();
  late.reset();
  client.reset();
  revived->Stop();
}

// Satellite: kill and restart the standby in the middle of a NEXMark run.
// The primary keeps acking (it drops the dead subscriber), the restarted
// puller re-subscribes and receives a FRESH snapshot covering the
// unreplicated window, and afterwards acked writes fail over intact.
TEST_F(NetClusterTest, StandbyRestartMidRunShipsFreshSnapshot) {
  const std::string query = "q5";

  NexmarkConfig nexmark;
  nexmark.events_per_worker = 4'000;
  nexmark.num_people = 120;
  nexmark.num_auctions = 120;
  nexmark.inter_event_ms = 10;

  QueryParams params;
  params.window_size_ms = 20'000;
  params.session_gap_ms = 2'000;

  FlowKvBackendFactory embedded(JoinPath(dir_, "embedded_" + query), FlowKvOptions{});
  RunOutcome reference = RunQuery(query, &embedded, nexmark, params);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_FALSE(reference.results.empty());

  StartPuller(/*failover=*/false);

  net::ClientOptions copts;
  copts.port = primary_->port();
  copts.request_timeout_ms = 60'000;
  copts.max_retries = 8;
  RemoteBackendFactory remote(copts);
  RunOutcome remote_run =
      RunQuery(query, &remote, nexmark, params, /*hook_at_event=*/2'000, [this] {
        // Hard-bounce the standby: new process (fresh Server), new
        // subscription. kRestoreStore wipes to the shipped snapshot, so the
        // restart cannot resurrect stale state.
        puller_->Stop();
        puller_.reset();
        standby_->Stop();
        standby_.reset();
        ASSERT_TRUE(net::Server::Start(sopts_, &standby_).ok());
        StartPuller(/*failover=*/false);  // asserts a fresh snapshot restored
      });
  ASSERT_TRUE(remote_run.status.ok()) << remote_run.status.ToString();
  EXPECT_EQ(remote_run.results, reference.results)
      << query << " diverged across a standby restart";
  EXPECT_TRUE(puller_->snapshot_loaded());

  // The re-subscribed stream is live again: a synchronously replicated
  // write survives killing the primary and promoting the standby.
  net::ClientOptions fopts;
  fopts.port = primary_->port();
  fopts.standbys = {{"127.0.0.1", standby_->port()}};
  fopts.request_timeout_ms = 20'000;
  fopts.max_retries = 8;
  fopts.reconnect_backoff_ms = 10;
  fopts.reconnect_backoff_max_ms = 200;
  fopts.jitter_seed = 19;
  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(fopts, &client).ok());
  const Window w(0, 1000);
  uint64_t handle = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("cluster.rs.h0", RmwSpec("rs"), &handle, &pattern).ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client->RmwPut(handle, "k" + std::to_string(i), w, "v").ok());
  }
  ASSERT_TRUE(client->Flush().ok());

  primary_->Stop();
  ASSERT_TRUE(standby_->Promote(2).ok());
  std::string value;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client->RmwGet(handle, "k" + std::to_string(i), w, &value).ok())
        << "acked write k" << i << " lost across the standby restart";
    EXPECT_EQ(value, "v");
  }
  client.reset();
}

// The acceptance bar from the issue: a NEXMark query whose primary is
// killed mid-run — with nothing but the lease/election machinery to recover
// it — must match the embedded reference exactly. RMW-only queries (q5,
// q12): idempotent Puts make the at-least-once replay of the in-flight
// batch converge to the same state on the promoted standby.
class ClusterEquivalenceTest : public NetClusterTest,
                               public ::testing::WithParamInterface<std::string> {};

TEST_P(ClusterEquivalenceTest, NexmarkMatchesEmbeddedAcrossAutomatedFailover) {
  const std::string query = GetParam();

  NexmarkConfig nexmark;
  nexmark.events_per_worker = 4'000;
  nexmark.num_people = 120;
  nexmark.num_auctions = 120;
  nexmark.inter_event_ms = 10;

  QueryParams params;
  params.window_size_ms = 20'000;
  params.session_gap_ms = 2'000;

  FlowKvBackendFactory embedded(JoinPath(dir_, "embedded_" + query), FlowKvOptions{});
  RunOutcome reference = RunQuery(query, &embedded, nexmark, params);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_FALSE(reference.results.empty());

  StartPuller(/*failover=*/true);
  RemoteBackendFactory remote(ClusterClientOptions());
  RunOutcome remote_run = RunQuery(query, &remote, nexmark, params,
                                   /*hook_at_event=*/2'000,
                                   [this] { primary_->Stop(); });
  ASSERT_TRUE(remote_run.status.ok()) << remote_run.status.ToString();
  EXPECT_EQ(remote_run.results.size(), reference.results.size());
  EXPECT_EQ(remote_run.results, reference.results)
      << query << " diverged across automated failover";

  // The recovery really was the election, not a revived primary.
  EXPECT_TRUE(puller_->promoted());
  EXPECT_EQ(standby_->cluster_role(), net::kRolePrimary);
  EXPECT_EQ(standby_->cluster_epoch(), 2u);
}

INSTANTIATE_TEST_SUITE_P(RmwQueries, ClusterEquivalenceTest,
                         ::testing::Values("q5", "q12"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---------------------------------------------------------------------------
// Promotion crash sweep: kill the promoting standby at EVERY sync point of
// the epoch-bump commit, for every point until a run completes uncrashed.
// Invariants on restart: the server always comes back, the epoch is exactly
// 1 or 2 (atomic rename — never torn, never regressed) and 2 whenever the
// promote was acknowledged, and the seeded store is intact.

class PromotionCrashSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<FaultInjectionFs>();
    InstallFsHooks(fs_.get());
  }
  void TearDown() override {
    fs_->ResetTracking();
    InstallFsHooks(nullptr);
    for (const auto& dir : dirs_) {
      RemoveDirRecursively(dir).IgnoreError();
    }
  }

  std::string TempDir(const std::string& tag) {
    dirs_.push_back(MakeTempDir(tag));
    return dirs_.back();
  }

  std::unique_ptr<FaultInjectionFs> fs_;
  std::vector<std::string> dirs_;
};

TEST_F(PromotionCrashSweepTest, PromotionSurvivesCrashAtEverySyncPoint) {
  constexpr int kKeys = 16;
  const Window w(0, 1000);

  for (uint64_t crash_point = 1;; ++crash_point) {
    const std::string dir = TempDir("promo_crash");
    net::ServerOptions options;
    options.num_shards = 2;
    options.data_dir = JoinPath(dir, "data");
    options.checkpoint_dir = JoinPath(dir, "ckpt");
    fs_->ResetTracking();

    // Seed durable state as a primary: one batch and a clean drain.
    {
      std::unique_ptr<net::Server> server;
      ASSERT_TRUE(net::Server::Start(options, &server).ok());
      net::ClientOptions copts;
      copts.port = server->port();
      std::unique_ptr<net::Client> client;
      ASSERT_TRUE(net::Client::Connect(copts, &client).ok());
      uint64_t handle = 0;
      StorePattern pattern;
      ASSERT_TRUE(client->OpenStore("promo.h0", RmwSpec("promo"), &handle, &pattern).ok());
      for (int i = 0; i < kKeys; ++i) {
        ASSERT_TRUE(client->RmwPut(handle, "k" + std::to_string(i), w, "v").ok());
      }
      ASSERT_TRUE(client->Flush().ok());
      client.reset();
      ASSERT_TRUE(server->DrainAndStop().ok());
    }

    // Restart as a standby and promote with the crash armed at
    // `crash_point` — this sweeps every fsync of PersistClusterEpoch's
    // write + rename commit.
    bool promote_ok = false;
    {
      net::ServerOptions sopts = options;
      sopts.start_as_standby = true;
      std::unique_ptr<net::Server> server;
      ASSERT_TRUE(net::Server::Start(sopts, &server).ok());
      ASSERT_EQ(server->cluster_epoch(), 1u);
      fs_->ResetTracking();
      fs_->CrashAtSyncPoint(crash_point);
      const Status promoted = server->Promote(2);
      promote_ok = promoted.ok();
      server->Stop();
    }
    const bool crashed = fs_->crashed();
    if (crashed) {
      ASSERT_TRUE(fs_->RestoreCrashImage().ok());
    } else {
      fs_->ResetTracking();
    }

    // Restart on the crash image (revived as a primary so the store is
    // readable) and check the invariants.
    {
      std::unique_ptr<net::Server> server;
      const Status restarted = net::Server::Start(options, &server);
      ASSERT_TRUE(restarted.ok())
          << "crash point " << crash_point << ": " << restarted.ToString();
      const uint64_t epoch = server->cluster_epoch();
      EXPECT_TRUE(epoch == 1 || epoch == 2)
          << "crash point " << crash_point << " tore the epoch: " << epoch;
      if (promote_ok) {
        EXPECT_EQ(epoch, 2u)
            << "crash point " << crash_point << " regressed an acked promotion";
      }
      net::ClientOptions copts;
      copts.port = server->port();
      std::unique_ptr<net::Client> client;
      ASSERT_TRUE(net::Client::Connect(copts, &client).ok());
      uint64_t handle = 0;
      StorePattern pattern;
      ASSERT_TRUE(client->OpenStore("promo.h0", RmwSpec("promo"), &handle, &pattern).ok());
      std::string value;
      for (int i = 0; i < kKeys; ++i) {
        ASSERT_TRUE(client->RmwGet(handle, "k" + std::to_string(i), w, &value).ok())
            << "crash point " << crash_point << " lost committed key k" << i;
        EXPECT_EQ(value, "v");
      }
      client.reset();
      server->Stop();
    }

    if (!crashed) {
      // The armed point was past the promotion's last sync: sweep done. A
      // promotion that never crashed at point 1 would mean its commit does
      // no hooked fsync at all — the sweep would be vacuous.
      EXPECT_GT(crash_point, 1u) << "promotion commit performed no tracked sync";
      break;
    }
  }
}

}  // namespace
}  // namespace flowkv
