// End-to-end cross-backend equivalence: every NEXMark query must produce an
// identical multiset of results on the in-memory reference backend and on
// FlowKV, the LSM baseline, and the hash-log baseline. This is the backbone
// integration test of the reproduction: if FlowKV's semantic-aware stores
// dropped, duplicated, or reordered state, it would show up here.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/backends/hashkv_backend.h"
#include "src/backends/lsm_backend.h"
#include "src/backends/memory_backend.h"
#include "src/common/env.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"
#include "src/spe/job_runner.h"

namespace flowkv {
namespace {

// Canonical form: sorted (timestamp, key, value) triples.
using Results = std::vector<std::tuple<int64_t, std::string, std::string>>;

class ResultCollector : public Collector {
 public:
  Status Emit(const Event& event) override {
    results.emplace_back(event.timestamp, event.key, event.value);
    return Status::Ok();
  }
  Results results;
};

struct RunOutcome {
  Status status;
  Results results;
};

RunOutcome RunQueryOn(const std::string& query, StateBackendFactory* factory,
                      const NexmarkConfig& nexmark, const QueryParams& params) {
  RunOutcome outcome;
  auto collector = std::make_shared<ResultCollector>();
  Pipeline pipeline;
  outcome.status = BuildNexmarkQuery(query, params, &pipeline);
  if (!outcome.status.ok()) {
    return outcome;
  }
  outcome.status = pipeline.Open(factory, 0, collector.get());
  if (!outcome.status.ok()) {
    return outcome;
  }
  NexmarkSource source(nexmark, 0);
  Event event;
  int64_t max_ts = 0;
  int since_watermark = 0;
  while (source.Next(&event)) {
    outcome.status = pipeline.Process(event);
    if (!outcome.status.ok()) {
      return outcome;
    }
    max_ts = event.timestamp;
    if (++since_watermark >= 128) {
      since_watermark = 0;
      outcome.status = pipeline.AdvanceWatermark(max_ts);
      if (!outcome.status.ok()) {
        return outcome;
      }
    }
  }
  outcome.status = pipeline.Finish();
  outcome.results = collector->results;
  std::sort(outcome.results.begin(), outcome.results.end());
  return outcome;
}

class QueryEquivalenceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { dir_ = MakeTempDir("queries_test"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }
  std::string dir_;
};

TEST_P(QueryEquivalenceTest, AllBackendsAgree) {
  const std::string query = GetParam();

  NexmarkConfig nexmark;
  nexmark.events_per_worker = 30'000;
  nexmark.num_people = 300;
  nexmark.num_auctions = 300;
  nexmark.inter_event_ms = 10;

  QueryParams params;
  params.window_size_ms = 40'000;  // ~7 windows over the 300 s span
  params.session_gap_ms = 2'000;

  MemoryBackendFactory memory;
  RunOutcome reference = RunQueryOn(query, &memory, nexmark, params);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_FALSE(reference.results.empty()) << "query produced no output";

  FlowKvOptions flowkv_options;
  flowkv_options.write_buffer_bytes = 64 * 1024;  // force heavy disk traffic
  FlowKvBackendFactory flowkv(JoinPath(dir_, "flowkv"), flowkv_options);
  RunOutcome flowkv_run = RunQueryOn(query, &flowkv, nexmark, params);
  ASSERT_TRUE(flowkv_run.status.ok()) << flowkv_run.status.ToString();
  EXPECT_EQ(flowkv_run.results.size(), reference.results.size());
  EXPECT_EQ(flowkv_run.results, reference.results) << "flowkv diverges from memory";

  LsmOptions lsm_options;
  lsm_options.write_buffer_bytes = 64 * 1024;
  lsm_options.compaction_trigger = 4;
  LsmBackendFactory lsm(JoinPath(dir_, "lsm"), lsm_options);
  RunOutcome lsm_run = RunQueryOn(query, &lsm, nexmark, params);
  ASSERT_TRUE(lsm_run.status.ok()) << lsm_run.status.ToString();
  EXPECT_EQ(lsm_run.results, reference.results) << "lsm diverges from memory";

  HashKvOptions hashkv_options;
  hashkv_options.memory_bytes = 256 * 1024;
  HashKvBackendFactory hashkv(JoinPath(dir_, "hashkv"), hashkv_options);
  RunOutcome hashkv_run = RunQueryOn(query, &hashkv, nexmark, params);
  ASSERT_TRUE(hashkv_run.status.ok()) << hashkv_run.status.ToString();
  EXPECT_EQ(hashkv_run.results, reference.results) << "hashkv diverges from memory";
}

INSTANTIATE_TEST_SUITE_P(AllQueries, QueryEquivalenceTest,
                         ::testing::ValuesIn(NexmarkQueryNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(QueryCatalogTest, UnknownQueryRejected) {
  Pipeline pipeline;
  EXPECT_FALSE(BuildNexmarkQuery("q99", QueryParams{}, &pipeline).ok());
}

TEST(QueryCatalogTest, AllNamesBuild) {
  for (const auto& name : NexmarkQueryNames()) {
    Pipeline pipeline;
    EXPECT_TRUE(BuildNexmarkQuery(name, QueryParams{}, &pipeline).ok()) << name;
    EXPECT_GE(pipeline.operator_count(), 2u);
  }
}

}  // namespace
}  // namespace flowkv
