// Backend-adapter equivalence: every StateBackend (FlowKV, LSM, hash-log)
// must behave exactly like the in-memory reference under randomized
// operation sequences, for all three pattern interfaces. This is the
// contract the window operator relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/backends/hashkv_backend.h"
#include "src/backends/lsm_backend.h"
#include "src/backends/memory_backend.h"
#include "src/common/env.h"
#include "src/common/random.h"

namespace flowkv {
namespace {

enum class BackendKind { kMemory, kFlowKv, kLsm, kHashKv };

std::string KindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMemory:
      return "memory";
    case BackendKind::kFlowKv:
      return "flowkv";
    case BackendKind::kLsm:
      return "lsm";
    case BackendKind::kHashKv:
      return "hashkv";
  }
  return "?";
}

class BackendsTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("backends_test");
    switch (GetParam()) {
      case BackendKind::kMemory:
        factory_ = std::make_unique<MemoryBackendFactory>();
        break;
      case BackendKind::kFlowKv: {
        FlowKvOptions options;
        options.write_buffer_bytes = 2048;  // exercise the disk paths
        factory_ = std::make_unique<FlowKvBackendFactory>(dir_, options);
        break;
      }
      case BackendKind::kLsm: {
        LsmOptions options;
        options.write_buffer_bytes = 2048;
        options.compaction_trigger = 4;
        factory_ = std::make_unique<LsmBackendFactory>(dir_, options);
        break;
      }
      case BackendKind::kHashKv: {
        HashKvOptions options;
        options.memory_bytes = 64 * 1024;
        options.compaction_min_bytes = 32 * 1024;
        factory_ = std::make_unique<HashKvBackendFactory>(dir_, options);
        break;
      }
    }
    ASSERT_TRUE(factory_->CreateBackend(0, "op", &backend_).ok());
  }

  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }

  OperatorStateSpec Spec(WindowKind kind, bool incremental) {
    OperatorStateSpec spec;
    spec.name = "op";
    spec.window_kind = kind;
    spec.incremental = incremental;
    spec.session_gap_ms = 100;
    spec.window_size_ms = 100;
    return spec;
  }

  std::string dir_;
  std::unique_ptr<StateBackendFactory> factory_;
  std::unique_ptr<StateBackend> backend_;
};

TEST_P(BackendsTest, RmwMatchesReferenceUnderRandomOps) {
  std::unique_ptr<RmwState> state;
  ASSERT_TRUE(backend_->CreateRmw(Spec(WindowKind::kTumbling, true), &state).ok());
  std::map<std::string, std::string> reference;  // state-key -> acc
  Random rng(7);
  for (int step = 0; step < 3000; ++step) {
    const std::string key = "key" + std::to_string(rng.Uniform(40));
    const Window w(static_cast<int64_t>(rng.Uniform(5)) * 100,
                   static_cast<int64_t>(rng.Uniform(5)) * 100 + 100);
    const std::string ref_key = key + "@" + w.ToString();
    const uint64_t op = rng.Uniform(10);
    if (op < 6) {  // Put
      std::string acc = "acc" + std::to_string(rng.Next() % 1000);
      ASSERT_TRUE(state->Put(key, w, acc).ok());
      reference[ref_key] = acc;
    } else if (op < 9) {  // Get
      std::string acc;
      Status s = state->Get(key, w, &acc);
      auto it = reference.find(ref_key);
      if (it == reference.end()) {
        EXPECT_TRUE(s.IsNotFound()) << KindName(GetParam()) << " step " << step;
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString() << " step " << step;
        EXPECT_EQ(acc, it->second) << KindName(GetParam()) << " step " << step;
      }
    } else {  // Remove
      ASSERT_TRUE(state->Remove(key, w).ok());
      reference.erase(ref_key);
    }
  }
  // Final sweep.
  for (const auto& [ref_key, expected] : reference) {
    const size_t at = ref_key.find('@');
    const std::string key = ref_key.substr(0, at);
    const std::string win = ref_key.substr(at + 1);
    int64_t start, end;
    ASSERT_EQ(std::sscanf(win.c_str(), "[%ld,%ld)", &start, &end), 2);
    std::string acc;
    ASSERT_TRUE(state->Get(key, Window(start, end), &acc).ok()) << ref_key;
    EXPECT_EQ(acc, expected);
  }
}

TEST_P(BackendsTest, AurMatchesReferenceUnderRandomOps) {
  std::unique_ptr<AppendUnalignedState> state;
  ASSERT_TRUE(backend_->CreateAppendUnaligned(Spec(WindowKind::kSession, false), &state).ok());
  std::map<std::string, std::vector<std::string>> reference;
  Random rng(11);
  int64_t ts = 0;
  for (int step = 0; step < 2000; ++step) {
    const std::string key = "key" + std::to_string(rng.Uniform(20));
    const int64_t start = static_cast<int64_t>(rng.Uniform(8)) * 100;
    const Window w(start, start + 100);
    const std::string ref_key = key + "@" + w.ToString();
    const uint64_t op = rng.Uniform(10);
    if (op < 7) {  // Append
      std::string value = "v" + std::to_string(step);
      ASSERT_TRUE(state->Append(key, value, w, ts++).ok());
      reference[ref_key].push_back(value);
    } else if (op < 9) {  // Get (fetch & remove)
      std::vector<std::string> values;
      Status s = state->Get(key, w, &values);
      auto it = reference.find(ref_key);
      if (it == reference.end()) {
        EXPECT_TRUE(s.IsNotFound() || values.empty())
            << KindName(GetParam()) << " step " << step;
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString() << " step " << step;
        EXPECT_EQ(values, it->second) << KindName(GetParam()) << " step " << step;
        reference.erase(it);
      }
    } else {  // MergeWindows into a fresh destination window
      const Window dst(start, start + 200);
      const std::string dst_key = key + "@" + dst.ToString();
      if (dst_key != ref_key) {
        ASSERT_TRUE(state->MergeWindows(key, {w}, dst).ok());
        auto it = reference.find(ref_key);
        if (it != reference.end()) {
          auto& dst_values = reference[dst_key];
          dst_values.insert(dst_values.end(), it->second.begin(), it->second.end());
          reference.erase(ref_key);
        }
      }
    }
  }
  for (const auto& [ref_key, expected] : reference) {
    const size_t at = ref_key.find('@');
    const std::string key = ref_key.substr(0, at);
    int64_t start, end;
    ASSERT_EQ(std::sscanf(ref_key.c_str() + at + 1, "[%ld,%ld)", &start, &end), 2);
    std::vector<std::string> values;
    ASSERT_TRUE(state->Get(key, Window(start, end), &values).ok()) << ref_key;
    EXPECT_EQ(values, expected) << ref_key;
  }
}

TEST_P(BackendsTest, AarDrainsWindowsKeyComplete) {
  std::unique_ptr<AppendAlignedState> state;
  ASSERT_TRUE(backend_->CreateAppendAligned(Spec(WindowKind::kTumbling, false), &state).ok());
  std::map<int64_t, std::map<std::string, std::vector<std::string>>> reference;
  Random rng(13);
  for (int step = 0; step < 3000; ++step) {
    const std::string key = "key" + std::to_string(rng.Uniform(30));
    const int64_t start = static_cast<int64_t>(rng.Uniform(4)) * 100;
    std::string value = "v" + std::to_string(step);
    ASSERT_TRUE(state->Append(key, value, Window(start, start + 100)).ok());
    reference[start][key].push_back(value);
  }
  for (const auto& [start, expected_keys] : reference) {
    const Window w(start, start + 100);
    std::map<std::string, std::vector<std::string>> drained;
    while (true) {
      std::vector<WindowChunkEntry> chunk;
      bool done = false;
      ASSERT_TRUE(state->GetWindowChunk(w, &chunk, &done).ok());
      if (done) {
        break;
      }
      for (auto& entry : chunk) {
        // Key-complete chunks: a key never appears twice.
        EXPECT_EQ(drained.count(entry.key), 0u)
            << KindName(GetParam()) << " split key " << entry.key;
        drained[entry.key] = std::move(entry.values);
      }
    }
    EXPECT_EQ(drained, expected_keys) << KindName(GetParam()) << " window " << w.ToString();
    // Fetch-and-remove: draining again yields nothing.
    std::vector<WindowChunkEntry> chunk;
    bool done = false;
    ASSERT_TRUE(state->GetWindowChunk(w, &chunk, &done).ok());
    EXPECT_TRUE(done);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendsTest,
                         ::testing::Values(BackendKind::kMemory, BackendKind::kFlowKv,
                                           BackendKind::kLsm, BackendKind::kHashKv),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                           return KindName(info.param);
                         });

}  // namespace
}  // namespace flowkv
