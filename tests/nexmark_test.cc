// NEXMark substrate tests: event serialization, generator statistics,
// aggregate/process functions.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/common/coding.h"
#include "src/nexmark/aggregates.h"
#include "src/nexmark/events.h"
#include "src/nexmark/generator.h"

namespace flowkv {
namespace {

TEST(NexmarkEventsTest, SerializedSizesMatchPaper) {
  // §6 "Input dataset": persons/auctions ~16 B, bids ~84 B.
  Person p{1, 2};
  Auction a{3, 4};
  Bid b{5, 6, 7, 8};
  EXPECT_EQ(SerializePerson(p).size(), 17u);
  EXPECT_EQ(SerializeAuction(a).size(), 17u);
  EXPECT_EQ(SerializeBid(b).size(), 84u);
}

TEST(NexmarkEventsTest, RoundTrips) {
  Person p{42, 99};
  Person p2;
  ASSERT_TRUE(ParsePerson(SerializePerson(p), &p2));
  EXPECT_EQ(p2.id, 42u);
  EXPECT_EQ(p2.state, 99u);

  Auction a{7, 13};
  Auction a2;
  ASSERT_TRUE(ParseAuction(SerializeAuction(a), &a2));
  EXPECT_EQ(a2.id, 7u);
  EXPECT_EQ(a2.seller, 13u);

  Bid b{1, 2, 3, 4};
  Bid b2;
  ASSERT_TRUE(ParseBid(SerializeBid(b), &b2));
  EXPECT_EQ(b2.auction, 1u);
  EXPECT_EQ(b2.bidder, 2u);
  EXPECT_EQ(b2.price, 3u);
  EXPECT_EQ(b2.date_time, 4);
}

TEST(NexmarkEventsTest, TypeTagsAreExclusive) {
  Bid b{1, 2, 3, 4};
  std::string serialized = SerializeBid(b);
  Person p;
  Auction a;
  EXPECT_FALSE(ParsePerson(serialized, &p));
  EXPECT_FALSE(ParseAuction(serialized, &a));
  NexmarkEventType type;
  ASSERT_TRUE(PeekEventType(serialized, &type));
  EXPECT_EQ(type, NexmarkEventType::kBid);
}

TEST(NexmarkEventsTest, IdKeyRoundTrip) {
  EXPECT_EQ(ParseIdKey(IdKey(123456789)), 123456789u);
  EXPECT_EQ(IdKey(1).size(), 8u);
}

TEST(NexmarkGeneratorTest, EventMixMatchesProportions) {
  NexmarkConfig config;
  config.events_per_worker = 50'000;
  NexmarkSource source(config, 0);
  Event event;
  std::map<NexmarkEventType, int> counts;
  int64_t prev_ts = -1;
  while (source.Next(&event)) {
    NexmarkEventType type;
    ASSERT_TRUE(PeekEventType(event.value, &type));
    counts[type]++;
    EXPECT_GT(event.timestamp, prev_ts);  // monotone event time
    prev_ts = event.timestamp;
  }
  // 2% / 6% / 92%.
  EXPECT_EQ(counts[NexmarkEventType::kPerson], 1000);
  EXPECT_EQ(counts[NexmarkEventType::kAuction], 3000);
  EXPECT_EQ(counts[NexmarkEventType::kBid], 46000);
}

TEST(NexmarkGeneratorTest, DeterministicPerSeedAndWorker) {
  NexmarkConfig config;
  config.events_per_worker = 100;
  NexmarkSource s1(config, 0), s2(config, 0), s3(config, 1);
  Event e1, e2, e3;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s1.Next(&e1));
    ASSERT_TRUE(s2.Next(&e2));
    ASSERT_TRUE(s3.Next(&e3));
    EXPECT_EQ(e1, e2);
  }
}

TEST(NexmarkGeneratorTest, WorkersHaveDisjointKeySpaces) {
  NexmarkConfig config;
  config.events_per_worker = 5000;
  NexmarkSource s0(config, 0), s1(config, 1);
  std::vector<uint64_t> keys0, keys1;
  Event event;
  while (s0.Next(&event)) {
    keys0.push_back(ParseIdKey(event.key));
  }
  while (s1.Next(&event)) {
    keys1.push_back(ParseIdKey(event.key));
  }
  std::sort(keys0.begin(), keys0.end());
  std::sort(keys1.begin(), keys1.end());
  std::vector<uint64_t> overlap;
  std::set_intersection(keys0.begin(), keys0.end(), keys1.begin(), keys1.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
}

TEST(NexmarkGeneratorTest, KeyCardinalityBounded) {
  NexmarkConfig config;
  config.events_per_worker = 20'000;
  config.num_people = 50;
  NexmarkSource source(config, 0);
  std::map<uint64_t, int> bidder_counts;
  Event event;
  Bid bid;
  while (source.Next(&event)) {
    if (ParseBid(event.value, &bid)) {
      bidder_counts[bid.bidder]++;
    }
  }
  EXPECT_LE(bidder_counts.size(), 50u);
  EXPECT_GE(bidder_counts.size(), 40u);  // most keys drawn at this volume
}

TEST(AggregatesTest, CountAggregate) {
  CountAggregate agg;
  std::string acc = agg.CreateAccumulator();
  for (int i = 0; i < 5; ++i) {
    agg.Add("ignored", &acc);
  }
  EXPECT_EQ(DecodeFixed64(agg.GetResult(acc).data()), 5u);
  std::string other = agg.CreateAccumulator();
  agg.Add("x", &other);
  EXPECT_EQ(DecodeFixed64(agg.MergeAccumulators(acc, other).data()), 6u);
}

TEST(AggregatesTest, TopAuctionAggregatePicksHighestCount) {
  TopAuctionAggregate agg;
  std::string acc = agg.CreateAccumulator();
  agg.Add(EncodeAuctionCount(10, 5), &acc);
  agg.Add(EncodeAuctionCount(20, 9), &acc);
  agg.Add(EncodeAuctionCount(30, 7), &acc);
  uint64_t auction, count;
  ASSERT_TRUE(DecodeAuctionCount(agg.GetResult(acc), &auction, &count));
  EXPECT_EQ(auction, 20u);
  EXPECT_EQ(count, 9u);
}

TEST(AggregatesTest, TopAuctionTieBreaksOnLowerId) {
  TopAuctionAggregate agg;
  std::string acc = agg.CreateAccumulator();
  agg.Add(EncodeAuctionCount(30, 5), &acc);
  agg.Add(EncodeAuctionCount(10, 5), &acc);
  agg.Add(EncodeAuctionCount(20, 5), &acc);
  uint64_t auction, count;
  ASSERT_TRUE(DecodeAuctionCount(agg.GetResult(acc), &auction, &count));
  EXPECT_EQ(auction, 10u);
}

Status CollectEmit(std::vector<std::string>* sink, std::string value) {
  sink->push_back(std::move(value));
  return Status::Ok();
}

TEST(AggregatesTest, MaxPriceProcess) {
  MaxPriceProcess fn;
  std::vector<std::string> values = {SerializeBid({1, 2, 500, 0}), SerializeBid({1, 2, 900, 0}),
                                     SerializeBid({1, 2, 200, 0})};
  std::vector<std::string> out;
  ASSERT_TRUE(fn.Process("k", Window(0, 10), values,
                         [&](std::string v) { return CollectEmit(&out, std::move(v)); })
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(DecodeFixed64(out[0].data()), 900u);
}

TEST(AggregatesTest, MedianPriceProcessOddAndEven) {
  MedianPriceProcess fn;
  auto median_of = [&](std::vector<uint64_t> prices) {
    std::vector<std::string> values;
    for (uint64_t p : prices) {
      values.push_back(SerializeBid({1, 2, p, 0}));
    }
    std::vector<std::string> out;
    EXPECT_TRUE(fn.Process("k", Window(0, 10), values,
                           [&](std::string v) { return CollectEmit(&out, std::move(v)); })
                    .ok());
    return DecodeFixed64(out[0].data());
  };
  EXPECT_EQ(median_of({5, 1, 9}), 5u);
  EXPECT_EQ(median_of({4, 1, 9, 6}), 4u);  // lower median
  EXPECT_EQ(median_of({7}), 7u);
}

TEST(AggregatesTest, JoinEmitsOnlyWithPersonPresent) {
  NewUserAuctionJoinProcess fn;
  std::vector<std::string> out;
  // Auctions without their seller's person record: no output.
  std::vector<std::string> values = {SerializeAuction({100, 7}), SerializeAuction({101, 7})};
  ASSERT_TRUE(fn.Process(IdKey(7), Window(0, 10), values,
                         [&](std::string v) { return CollectEmit(&out, std::move(v)); })
                  .ok());
  EXPECT_TRUE(out.empty());
  // With the person: one joined row per auction, ordered by auction id.
  values.push_back(SerializePerson({7, 0}));
  ASSERT_TRUE(fn.Process(IdKey(7), Window(0, 10), values,
                         [&](std::string v) { return CollectEmit(&out, std::move(v)); })
                  .ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(DecodeFixed64(out[0].data()), 7u);        // person id
  EXPECT_EQ(DecodeFixed64(out[0].data() + 8), 100u);  // auction id
  EXPECT_EQ(DecodeFixed64(out[1].data() + 8), 101u);
}

}  // namespace
}  // namespace flowkv
