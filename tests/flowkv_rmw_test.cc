// RMW store tests (paper §4.3): hash write buffer, on-disk hash index + log,
// get/put/remove, flush spill, MSA compaction.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/env.h"
#include "src/flowkv/rmw_store.h"

namespace flowkv {
namespace {

class RmwStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("rmw_test"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }

  std::unique_ptr<RmwStore> OpenStore(FlowKvOptions options = {}) {
    std::unique_ptr<RmwStore> store;
    Status s = RmwStore::Open(dir_, options, &store);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return store;
  }

  std::string dir_;
};

TEST_F(RmwStoreTest, GetPutRemoveRoundTrip) {
  auto store = OpenStore();
  Window w(0, 100);
  std::string acc;
  EXPECT_TRUE(store->Get("k", w, &acc).IsNotFound());
  ASSERT_TRUE(store->Put("k", w, "agg1").ok());
  ASSERT_TRUE(store->Get("k", w, &acc).ok());
  EXPECT_EQ(acc, "agg1");
  ASSERT_TRUE(store->Put("k", w, "agg2").ok());
  ASSERT_TRUE(store->Get("k", w, &acc).ok());
  EXPECT_EQ(acc, "agg2");
  ASSERT_TRUE(store->Remove("k", w).ok());
  EXPECT_TRUE(store->Get("k", w, &acc).IsNotFound());
}

TEST_F(RmwStoreTest, SameKeyDifferentWindowsAreDistinct) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("k", Window(0, 100), "a").ok());
  ASSERT_TRUE(store->Put("k", Window(100, 200), "b").ok());
  std::string acc;
  ASSERT_TRUE(store->Get("k", Window(0, 100), &acc).ok());
  EXPECT_EQ(acc, "a");
  ASSERT_TRUE(store->Get("k", Window(100, 200), &acc).ok());
  EXPECT_EQ(acc, "b");
}

TEST_F(RmwStoreTest, ReadsBackFromDiskAfterFlush) {
  FlowKvOptions options;
  options.write_buffer_bytes = 512;
  auto store = OpenStore(options);
  Window w(0, 100);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i), w, "value" + std::to_string(i)).ok());
  }
  EXPECT_GT(store->stats().flushes, 0);
  std::string acc;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Get("key" + std::to_string(i), w, &acc).ok()) << i;
    EXPECT_EQ(acc, "value" + std::to_string(i));
  }
}

TEST_F(RmwStoreTest, BufferShadowsDiskVersion) {
  FlowKvOptions options;
  options.write_buffer_bytes = 400;
  auto store = OpenStore(options);
  Window w(0, 100);
  ASSERT_TRUE(store->Put("k", w, "old").ok());
  // Force a flush so "old" goes to disk.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put("filler" + std::to_string(i), w, std::string(32, 'f')).ok());
  }
  ASSERT_TRUE(store->Put("k", w, "new").ok());
  std::string acc;
  ASSERT_TRUE(store->Get("k", w, &acc).ok());
  EXPECT_EQ(acc, "new");
}

TEST_F(RmwStoreTest, IncrementalCounterWorkload) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1024;
  auto store = OpenStore(options);
  Window w(0, 1'000'000);
  // The canonical RMW loop: Get -> modify -> Put, thousands of times.
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "user" + std::to_string(i % 37);
    std::string acc;
    Status s = store->Get(key, w, &acc);
    uint64_t count = s.IsNotFound() ? 0 : std::stoull(acc);
    ASSERT_TRUE(s.ok() || s.IsNotFound());
    ASSERT_TRUE(store->Put(key, w, std::to_string(count + 1)).ok());
  }
  std::string acc;
  ASSERT_TRUE(store->Get("user0", w, &acc).ok());
  // 5000 events over 37 keys: user0 gets ceil(5000/37) = 136.
  EXPECT_EQ(std::stoull(acc), 136u);
}

TEST_F(RmwStoreTest, CompactionBoundsSpaceAmplification) {
  FlowKvOptions options;
  options.write_buffer_bytes = 2048;
  options.max_space_amplification = 1.5;
  auto store = OpenStore(options);
  Window w(0, 100);
  // Repeated overwrites -> dead versions on disk -> compactions.
  for (int round = 0; round < 100; ++round) {
    for (int k = 0; k < 20; ++k) {
      ASSERT_TRUE(store->Put("key" + std::to_string(k), w,
                             std::string(64, 'a' + (round % 26))).ok());
    }
  }
  EXPECT_GT(store->stats().compactions, 0);
  EXPECT_LE(store->SpaceAmplification(), 2.0);
  std::string acc;
  for (int k = 0; k < 20; ++k) {
    ASSERT_TRUE(store->Get("key" + std::to_string(k), w, &acc).ok());
    EXPECT_EQ(acc, std::string(64, 'a' + (99 % 26)));
  }
}

TEST_F(RmwStoreTest, RemoveMakesDiskBytesDead) {
  FlowKvOptions options;
  options.write_buffer_bytes = 256;
  options.max_space_amplification = 1e9;
  auto store = OpenStore(options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), Window(0, 100), std::string(64, 'v')).ok());
  }
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE(store->Remove("k" + std::to_string(i), Window(0, 100)).ok());
  }
  EXPECT_GT(store->SpaceAmplification(), 2.0);
  const uint64_t before = store->LogBytes();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_LT(store->LogBytes(), before);
  std::string acc;
  for (int i = 90; i < 100; ++i) {
    ASSERT_TRUE(store->Get("k" + std::to_string(i), Window(0, 100), &acc).ok());
  }
  EXPECT_TRUE(store->Get("k0", Window(0, 100), &acc).IsNotFound());
}

}  // namespace
}  // namespace flowkv
