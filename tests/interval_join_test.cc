// Interval join operator tests (paper §8 extension): pair semantics,
// bounds (incl. negative lower bound), exactly-once emission, event-time
// garbage collection, and backend equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/backends/memory_backend.h"
#include "src/common/env.h"
#include "src/common/random.h"
#include "src/spe/interval_join_operator.h"
#include "src/spe/pipeline.h"

namespace flowkv {
namespace {

class CaptureCollector : public Collector {
 public:
  Status Emit(const Event& event) override {
    events.push_back(event);
    return Status::Ok();
  }
  std::vector<Event> events;
};

// Side tag: first byte of the value ('L' or 'R').
int SideOf(const Event& e) { return e.value[0] == 'L' ? 0 : 1; }

Event L(const std::string& key, const std::string& v, int64_t ts) {
  return Event(key, "L" + v, ts);
}
Event R(const std::string& key, const std::string& v, int64_t ts) {
  return Event(key, "R" + v, ts);
}

class IntervalJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    factory_ = std::make_unique<MemoryBackendFactory>();
    ASSERT_TRUE(factory_->CreateBackend(0, "join", &backend_).ok());
  }

  std::unique_ptr<IntervalJoinOperator> MakeJoin(int64_t lower, int64_t upper,
                                                 int64_t bucket = 0) {
    IntervalJoinConfig config;
    config.name = "join";
    config.side_of = SideOf;
    config.lower_bound_ms = lower;
    config.upper_bound_ms = upper;
    config.bucket_ms = bucket;
    auto op = std::make_unique<IntervalJoinOperator>(std::move(config));
    EXPECT_TRUE(op->Open(backend_.get()).ok());
    return op;
  }

  std::unique_ptr<MemoryBackendFactory> factory_;
  std::unique_ptr<StateBackend> backend_;
};

TEST_F(IntervalJoinTest, JoinsPairsWithinBounds) {
  auto op = MakeJoin(0, 100);
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(L("k", "a", 1000), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(R("k", "x", 1050), &out).ok());  // in [1000,1100]
  ASSERT_TRUE(op->ProcessEvent(R("k", "y", 1101), &out).ok());  // out (>upper)
  ASSERT_TRUE(op->ProcessEvent(R("k", "z", 999), &out).ok());   // out (<lower)
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].value, "La|Rx");
  EXPECT_EQ(out.events[0].timestamp, 1050);
}

TEST_F(IntervalJoinTest, OrderIndependentAndExactlyOnce) {
  auto op = MakeJoin(0, 100);
  CaptureCollector out;
  // Right arrives first; the join fires when the left shows up.
  ASSERT_TRUE(op->ProcessEvent(R("k", "x", 1050), &out).ok());
  EXPECT_TRUE(out.events.empty());
  ASSERT_TRUE(op->ProcessEvent(L("k", "a", 1000), &out).ok());
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].value, "La|Rx");
  // Replaying neither side again... a second left joins the same right once.
  ASSERT_TRUE(op->ProcessEvent(L("k", "b", 960), &out).ok());
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[1].value, "Lb|Rx");
}

TEST_F(IntervalJoinTest, NegativeLowerBound) {
  auto op = MakeJoin(-50, 50);
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(L("k", "a", 1000), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(R("k", "before", 955), &out).ok());  // delta -45: in
  ASSERT_TRUE(op->ProcessEvent(R("k", "after", 1049), &out).ok());  // delta 49: in
  ASSERT_TRUE(op->ProcessEvent(R("k", "far", 900), &out).ok());     // delta -100: out
  ASSERT_EQ(out.events.size(), 2u);
}

TEST_F(IntervalJoinTest, KeysAreIsolated) {
  auto op = MakeJoin(0, 100);
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(L("k1", "a", 1000), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(R("k2", "x", 1050), &out).ok());
  EXPECT_TRUE(out.events.empty());
}

TEST_F(IntervalJoinTest, ManyToManyPairs) {
  auto op = MakeJoin(0, 100, /*bucket=*/64);
  CaptureCollector out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(op->ProcessEvent(L("k", "l" + std::to_string(i), 1000 + i), &out).ok());
  }
  for (int j = 0; j < 4; ++j) {
    ASSERT_TRUE(op->ProcessEvent(R("k", "r" + std::to_string(j), 1010 + j), &out).ok());
  }
  EXPECT_EQ(out.events.size(), 12u);  // 3 x 4 within bounds
}

TEST_F(IntervalJoinTest, WatermarkGarbageCollectsState) {
  auto op = MakeJoin(0, 100);
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(L("k", "old", 1000), &out).ok());
  // Watermark far past the left tuple's reach: its bucket is removed.
  ASSERT_TRUE(op->OnWatermark(5000, &out).ok());
  // A right tuple that WOULD have joined (if state survived) finds nothing.
  // (It is also outside the watermark, i.e. late — dropping is correct.)
  ASSERT_TRUE(op->ProcessEvent(R("k", "late", 1050), &out).ok());
  EXPECT_TRUE(out.events.empty());
}

TEST(IntervalJoinBackendTest, FlowKvMatchesMemory) {
  const std::string dir = MakeTempDir("ij_flowkv");
  auto run = [](StateBackendFactory* factory) {
    Pipeline pipeline;
    IntervalJoinConfig config;
    config.name = "join";
    config.side_of = SideOf;
    config.lower_bound_ms = -30;
    config.upper_bound_ms = 70;
    pipeline.AddOperator(std::make_unique<IntervalJoinOperator>(std::move(config)));
    CaptureCollector sink;
    EXPECT_TRUE(pipeline.Open(factory, 0, &sink).ok());
    flowkv::Random rng(99);
    int64_t ts = 0;
    for (int i = 0; i < 3000; ++i) {
      ts += static_cast<int64_t>(rng.Uniform(25));
      std::string key = "k" + std::to_string(rng.Uniform(10));
      Event e = rng.Bernoulli(0.5) ? L(key, std::to_string(i), ts)
                                   : R(key, std::to_string(i), ts);
      EXPECT_TRUE(pipeline.Process(e).ok());
      if (i % 101 == 0) {
        EXPECT_TRUE(pipeline.AdvanceWatermark(ts - 200).ok());
      }
    }
    EXPECT_TRUE(pipeline.Finish().ok());
    std::vector<std::string> results;
    for (const auto& e : sink.events) {
      results.push_back(e.key + "/" + e.value + "@" + std::to_string(e.timestamp));
    }
    std::sort(results.begin(), results.end());
    return results;
  };

  MemoryBackendFactory memory;
  auto expected = run(&memory);
  ASSERT_FALSE(expected.empty());

  FlowKvOptions options;
  options.write_buffer_bytes = 8 * 1024;
  FlowKvBackendFactory flowkv(dir, options);
  auto actual = run(&flowkv);
  EXPECT_EQ(actual, expected);
  RemoveDirRecursively(dir).IgnoreError();
}

}  // namespace
}  // namespace flowkv
