// Composite FlowKvStore tests (paper §3): pattern determination at launch,
// m-way key partitioning, cross-partition aligned reads, API guards.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/flowkv/flowkv_store.h"

namespace flowkv {
namespace {

class FlowKvStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("flowkv_test"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }

  OperatorStateSpec Spec(WindowKind kind, bool incremental) {
    OperatorStateSpec spec;
    spec.name = "op";
    spec.window_kind = kind;
    spec.incremental = incremental;
    spec.session_gap_ms = 50;
    spec.window_size_ms = 100;
    return spec;
  }

  std::unique_ptr<FlowKvStore> OpenStore(WindowKind kind, bool incremental,
                                         FlowKvOptions options = {}) {
    std::unique_ptr<FlowKvStore> store;
    Status s = FlowKvStore::Open(dir_, options, Spec(kind, incremental), &store);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return store;
  }

  std::string dir_;
};

TEST_F(FlowKvStoreTest, PatternDeterminationAtLaunch) {
  EXPECT_EQ(OpenStore(WindowKind::kTumbling, true)->pattern(),
            StorePattern::kReadModifyWrite);
  RemoveDirRecursively(dir_).IgnoreError();
  dir_ = MakeTempDir("flowkv_test");
  EXPECT_EQ(OpenStore(WindowKind::kTumbling, false)->pattern(),
            StorePattern::kAppendAligned);
  RemoveDirRecursively(dir_).IgnoreError();
  dir_ = MakeTempDir("flowkv_test");
  EXPECT_EQ(OpenStore(WindowKind::kSession, false)->pattern(),
            StorePattern::kAppendUnaligned);
}

TEST_F(FlowKvStoreTest, WrongPatternApiIsRejected) {
  auto store = OpenStore(WindowKind::kTumbling, true);  // RMW
  EXPECT_FALSE(store->Append("k", "v", Window(0, 100)).ok());
  std::vector<std::string> values;
  EXPECT_FALSE(store->Get("k", Window(0, 100), &values).ok());
  std::vector<WindowChunkEntry> chunk;
  bool done;
  EXPECT_FALSE(store->GetWindowChunk(Window(0, 100), &chunk, &done).ok());
}

TEST_F(FlowKvStoreTest, DeploysConfiguredPartitionCount) {
  FlowKvOptions options;
  options.num_partitions = 4;
  auto store = OpenStore(WindowKind::kSession, false, options);
  EXPECT_EQ(store->num_partitions(), 4);
  std::vector<std::string> names;
  ASSERT_TRUE(ListDir(dir_, &names).ok());
  EXPECT_EQ(names.size(), 4u);  // p0..p3
}

TEST_F(FlowKvStoreTest, AlignedReadDrainsAllPartitions) {
  FlowKvOptions options;
  options.num_partitions = 3;
  auto store = OpenStore(WindowKind::kTumbling, false, options);
  Window w(0, 100);
  std::map<std::string, int> expected;
  for (int i = 0; i < 100; ++i) {
    std::string key = "key" + std::to_string(i);  // spreads across partitions
    ASSERT_TRUE(store->Append(key, "v", w).ok());
    expected[key]++;
  }
  std::map<std::string, int> seen;
  while (true) {
    std::vector<WindowChunkEntry> chunk;
    bool done = false;
    ASSERT_TRUE(store->GetWindowChunk(w, &chunk, &done).ok());
    if (done) {
      break;
    }
    for (const auto& entry : chunk) {
      seen[entry.key] += static_cast<int>(entry.values.size());
    }
  }
  EXPECT_EQ(seen.size(), expected.size());
}

TEST_F(FlowKvStoreTest, RmwRoutesByKeyHash) {
  FlowKvOptions options;
  options.num_partitions = 2;
  auto store = OpenStore(WindowKind::kTumbling, true, options);
  Window w(0, 100);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i), w, std::to_string(i)).ok());
  }
  std::string acc;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Get("key" + std::to_string(i), w, &acc).ok());
    EXPECT_EQ(acc, std::to_string(i));
  }
  // Both partitions saw writes (50 keys can't all hash to one side...
  // deterministic given Hash64, validated empirically here).
  const StoreStats p0 = store->rmw_partition(0)->stats();
  const StoreStats p1 = store->rmw_partition(1)->stats();
  EXPECT_GT(p0.writes, 0);
  EXPECT_GT(p1.writes, 0);
  EXPECT_EQ(p0.writes + p1.writes, 50);
}

TEST_F(FlowKvStoreTest, AurMergeRoutesToSamePartition) {
  FlowKvOptions options;
  options.num_partitions = 2;
  auto store = OpenStore(WindowKind::kSession, false, options);
  Window src(0, 50), dst(0, 120);
  ASSERT_TRUE(store->Append("k", "a", src, 10).ok());
  ASSERT_TRUE(store->Append("k", "b", src, 20).ok());
  ASSERT_TRUE(store->MergeWindows("k", {src}, dst).ok());
  ASSERT_TRUE(store->Append("k", "c", dst, 70).ok());
  std::vector<std::string> values;
  ASSERT_TRUE(store->Get("k", dst, &values).ok());
  EXPECT_EQ(values, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(FlowKvStoreTest, GatherStatsSumsPartitions) {
  FlowKvOptions options;
  options.num_partitions = 2;
  auto store = OpenStore(WindowKind::kTumbling, true, options);
  Window w(0, 100);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i), w, "v").ok());
  }
  EXPECT_EQ(store->GatherStats().writes, 20);
}

TEST_F(FlowKvStoreTest, CustomPredictorOverrideIsUsed) {
  // §8: a user-supplied ETT predictor for custom window functions. Here the
  // override makes a "custom" (normally unpredictable) spec predictable.
  OperatorStateSpec spec = Spec(WindowKind::kCustom, false);
  FlowKvOptions options;
  options.write_buffer_bytes = 1;
  options.read_batch_ratio = 1.0;
  std::unique_ptr<FlowKvStore> store;
  ASSERT_TRUE(FlowKvStore::Open(dir_, options, spec, &store, [] {
                return std::unique_ptr<EttPredictor>(new AlignedEttPredictor());
              }).ok());
  ASSERT_EQ(store->pattern(), StorePattern::kAppendUnaligned);
  for (int i = 0; i < 10; ++i) {
    Window w(i * 100, i * 100 + 100);
    ASSERT_TRUE(store->Append("same-part-key", "v" + std::to_string(i), w, i * 100).ok());
  }
  std::vector<std::string> values;
  ASSERT_TRUE(store->Get("same-part-key", Window(0, 100), &values).ok());
  // With the override the remaining windows of this key's partition were
  // prefetched; without it (unpredictable) nothing would be.
  StoreStats stats = store->GatherStats();
  EXPECT_GT(stats.prefetched_entries, 1);
}

}  // namespace
}  // namespace flowkv
