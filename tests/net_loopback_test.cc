// Loopback server/client integration: a real flowkv_server::net::Server on
// 127.0.0.1 exercised through the blocking client across all three store
// patterns, multi-shard window drains, write batching, server-side metrics,
// error passthrough, timeouts, oversized-frame protection, and the graceful
// drain → checkpoint → restart → resume cycle (no acknowledged state lost).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/env.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/metrics.h"

namespace flowkv {
namespace net {
namespace {

OperatorStateSpec RmwSpec(const std::string& name) {
  OperatorStateSpec spec;
  spec.name = name;
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = true;
  spec.window_size_ms = 1000;
  return spec;
}

OperatorStateSpec AarSpec(const std::string& name) {
  OperatorStateSpec spec;
  spec.name = name;
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = false;
  spec.window_size_ms = 1000;
  return spec;
}

OperatorStateSpec AurSpec(const std::string& name) {
  OperatorStateSpec spec;
  spec.name = name;
  spec.window_kind = WindowKind::kSession;
  spec.incremental = false;
  spec.session_gap_ms = 500;
  return spec;
}

class NetLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("net_loopback");
    options_.num_shards = 3;
    options_.data_dir = JoinPath(dir_, "data");
    options_.checkpoint_dir = JoinPath(dir_, "ckpt");
    options_.drain_grace_ms = 5000;
    ASSERT_TRUE(Server::Start(options_, &server_).ok());
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
    RemoveDirRecursively(dir_).IgnoreError();
  }

  std::unique_ptr<Client> MakeClient() {
    ClientOptions copts;
    copts.port = server_->port();
    copts.request_timeout_ms = 20'000;
    std::unique_ptr<Client> client;
    EXPECT_TRUE(Client::Connect(copts, &client).ok());
    return client;
  }

  std::string dir_;
  ServerOptions options_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetLoopbackTest, PingAndUnknownStore) {
  auto client = MakeClient();
  ASSERT_TRUE(client->Ping().ok());

  // An unregistered handle is rejected client-side.
  std::string acc;
  EXPECT_FALSE(client->RmwGet(99, "k", Window(0, 1000), &acc).ok());
}

TEST_F(NetLoopbackTest, RmwPutGetRemove) {
  auto client = MakeClient();
  uint64_t h = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("t.rmw.h0", RmwSpec("rmw-op"), &h, &pattern).ok());
  EXPECT_EQ(pattern, StorePattern::kReadModifyWrite);

  const Window w(0, 1000);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(client->RmwPut(h, key, w, "acc" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(client->Flush().ok());

  for (int i = 0; i < 200; ++i) {
    std::string acc;
    ASSERT_TRUE(client->RmwGet(h, "key" + std::to_string(i), w, &acc).ok());
    EXPECT_EQ(acc, "acc" + std::to_string(i));
  }

  // NotFound passes through the wire as a status, not a failure.
  std::string acc;
  const Status miss = client->RmwGet(h, "nope", w, &acc);
  EXPECT_TRUE(miss.IsNotFound()) << miss.ToString();

  ASSERT_TRUE(client->RmwRemove(h, "key7", w).ok());
  ASSERT_TRUE(client->Flush().ok());
  EXPECT_TRUE(client->RmwGet(h, "key7", w, &acc).IsNotFound());

  // Overwrite keeps the latest value (write order preserved through batching).
  ASSERT_TRUE(client->RmwPut(h, "key3", w, "v1").ok());
  ASSERT_TRUE(client->RmwPut(h, "key3", w, "v2").ok());
  ASSERT_TRUE(client->RmwGet(h, "key3", w, &acc).ok());
  EXPECT_EQ(acc, "v2");
}

TEST_F(NetLoopbackTest, AarAppendAndMultiShardDrain) {
  auto client = MakeClient();
  uint64_t h = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("t.aar.h0", AarSpec("aar-op"), &h, &pattern).ok());
  EXPECT_EQ(pattern, StorePattern::kAppendAligned);

  const Window w(0, 1000);
  std::map<std::string, std::vector<std::string>> expected;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(i % 60);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(client->AppendAligned(h, key, value, w).ok());
    expected[key].push_back(value);
  }
  ASSERT_TRUE(client->Flush().ok());

  // Drain the window: the server walks all 3 shards behind one cursor.
  std::map<std::string, std::vector<std::string>> got;
  int chunks = 0;
  while (true) {
    std::vector<WindowChunkEntry> chunk;
    bool done = false;
    ASSERT_TRUE(client->GetWindowChunk(h, w, &chunk, &done).ok());
    for (auto& entry : chunk) {
      auto& dst = got[entry.key];
      dst.insert(dst.end(), entry.values.begin(), entry.values.end());
    }
    ++chunks;
    if (done) break;
    ASSERT_LT(chunks, 10'000) << "drain did not terminate";
  }
  // Per-key append order is preserved; key order is not.
  EXPECT_EQ(got, expected);

  // A second drain sees nothing: the read was fetch-and-remove.
  std::vector<WindowChunkEntry> chunk;
  bool done = false;
  ASSERT_TRUE(client->GetWindowChunk(h, w, &chunk, &done).ok());
  EXPECT_TRUE(done);
  EXPECT_TRUE(chunk.empty());
}

TEST_F(NetLoopbackTest, AurAppendGetMerge) {
  auto client = MakeClient();
  uint64_t h = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("t.aur.h0", AurSpec("aur-op"), &h, &pattern).ok());
  EXPECT_EQ(pattern, StorePattern::kAppendUnaligned);

  const Window w1(0, 500);
  const Window w2(700, 1200);
  const Window merged(0, 1200);
  ASSERT_TRUE(client->AppendUnaligned(h, "user1", "a", w1, 10).ok());
  ASSERT_TRUE(client->AppendUnaligned(h, "user1", "b", w1, 20).ok());
  ASSERT_TRUE(client->AppendUnaligned(h, "user1", "c", w2, 710).ok());
  ASSERT_TRUE(client->MergeWindows(h, "user1", {w1, w2}, merged).ok());

  std::vector<std::string> values;
  ASSERT_TRUE(client->GetUnaligned(h, "user1", merged, &values).ok());
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(NetLoopbackTest, ServerMetricsAreLabeled) {
  auto client = MakeClient();
  uint64_t h = 0;
  ASSERT_TRUE(client->OpenStore("t.metrics.h0", RmwSpec("metered-op"), &h, nullptr).ok());
  ASSERT_TRUE(client->RmwPut(h, "k", Window(0, 1000), "v").ok());
  ASSERT_TRUE(client->Flush().ok());

  // Server-side request metrics carry the per-operator label (satellite:
  // per-operator labels in src/obs).
  bool found_store_ops = false;
  for (const auto& sample : obs::MetricsRegistry::Global().Snapshot()) {
    if (sample.name == "server.store_ops" && sample.labels.op == "metered-op" &&
        sample.value > 0) {
      found_store_ops = true;
    }
  }
  EXPECT_TRUE(found_store_ops) << "no per-operator server.store_ops sample";

  bool found_latency_hist = false;
  for (const auto& hist : obs::MetricsRegistry::Global().HistogramSnapshots()) {
    if (hist.name == "server.request_latency_ms" && hist.count > 0) {
      found_latency_hist = true;
      EXPECT_GE(hist.p99, hist.p50);
    }
  }
  EXPECT_TRUE(found_latency_hist) << "no request-latency histogram snapshot";
}

TEST_F(NetLoopbackTest, GatherStatsAndServerSideCheckpoint) {
  auto client = MakeClient();
  uint64_t h = 0;
  ASSERT_TRUE(client->OpenStore("t.stats.h0", RmwSpec("stats-op"), &h, nullptr).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client->RmwPut(h, "k" + std::to_string(i), Window(0, 1000), "v").ok());
  }
  ASSERT_TRUE(client->Flush().ok());

  std::vector<std::pair<std::string, int64_t>> fields;
  ASSERT_TRUE(client->GatherStats(h, &fields).ok());
  int64_t writes = -1;
  for (const auto& [name, value] : fields) {
    if (name == "writes") writes = value;
  }
  EXPECT_GE(writes, 50) << "aggregated shard stats must count every put";

  const std::string ckpt = JoinPath(dir_, "manual_ckpt");
  ASSERT_TRUE(client->Checkpoint(h, ckpt).ok());
  // One checkpoint directory per shard.
  std::vector<std::string> entries;
  ASSERT_TRUE(ListDir(ckpt, &entries).ok());
  EXPECT_EQ(entries.size(), 3u);
}

TEST_F(NetLoopbackTest, DrainCheckpointRestartResume) {
  const int port = server_->port();
  {
    auto client = MakeClient();
    uint64_t h = 0;
    ASSERT_TRUE(client->OpenStore("t.durable.h0", RmwSpec("durable-op"), &h, nullptr).ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          client->RmwPut(h, "k" + std::to_string(i), Window(0, 1000), "v" + std::to_string(i))
              .ok());
    }
    // Flush returns only after the server acked every put.
    ASSERT_TRUE(client->Flush().ok());

    // Graceful drain: the same path the binary's SIGTERM handler triggers.
    ASSERT_TRUE(server_->DrainAndStop().ok());
    server_.reset();
  }

  // Restart on the same directories and port: the committed epoch restores.
  options_.port = port;
  ASSERT_TRUE(Server::Start(options_, &server_).ok());

  auto client = MakeClient();
  uint64_t h = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("t.durable.h0", RmwSpec("durable-op"), &h, &pattern).ok());
  EXPECT_EQ(pattern, StorePattern::kReadModifyWrite);
  for (int i = 0; i < 100; ++i) {
    std::string acc;
    ASSERT_TRUE(client->RmwGet(h, "k" + std::to_string(i), Window(0, 1000), &acc).ok())
        << "acked key k" << i << " lost across drain/restart";
    EXPECT_EQ(acc, "v" + std::to_string(i));
  }
}

TEST_F(NetLoopbackTest, ClientReconnectsAcrossRestart) {
  const int port = server_->port();
  auto client = MakeClient();
  uint64_t h = 0;
  ASSERT_TRUE(client->OpenStore("t.reconnect.h0", RmwSpec("reconnect-op"), &h, nullptr).ok());
  ASSERT_TRUE(client->RmwPut(h, "stable", Window(0, 1000), "before").ok());
  ASSERT_TRUE(client->Flush().ok());

  // Bounce the server while the client holds its (now dead) connection.
  ASSERT_TRUE(server_->DrainAndStop().ok());
  server_.reset();
  options_.port = port;
  ASSERT_TRUE(Server::Start(options_, &server_).ok());

  // The next read hits ConnectionReset internally, reconnects with backoff,
  // re-opens the registered store, and succeeds.
  std::string acc;
  ASSERT_TRUE(client->RmwGet(h, "stable", Window(0, 1000), &acc).ok());
  EXPECT_EQ(acc, "before");
}

TEST_F(NetLoopbackTest, DistinctNamespacesDoNotCollideOnDisk) {
  // "w0.q7" and "w0_q7" used to sanitize to the same directory name, silently
  // sharing one store's files; the escaping must be injective.
  auto client = MakeClient();
  uint64_t h1 = 0, h2 = 0;
  ASSERT_TRUE(client->OpenStore("w0.q7", RmwSpec("collide-a"), &h1, nullptr).ok());
  ASSERT_TRUE(client->OpenStore("w0_q7", RmwSpec("collide-b"), &h2, nullptr).ok());
  const Window w(0, 1000);
  ASSERT_TRUE(client->RmwPut(h1, "k", w, "from-dotted").ok());
  ASSERT_TRUE(client->RmwPut(h2, "k", w, "from-underscored").ok());
  ASSERT_TRUE(client->Flush().ok());

  std::string acc;
  ASSERT_TRUE(client->RmwGet(h1, "k", w, &acc).ok());
  EXPECT_EQ(acc, "from-dotted");
  ASSERT_TRUE(client->RmwGet(h2, "k", w, &acc).ok());
  EXPECT_EQ(acc, "from-underscored");

  // And the two stores occupy two distinct directories on every shard.
  std::vector<std::string> entries;
  ASSERT_TRUE(ListDir(JoinPath(options_.data_dir, "s0"), &entries).ok());
  EXPECT_EQ(entries.size(), 2u) << "namespaces collided onto one directory";
}

TEST_F(NetLoopbackTest, FailedOpenIsRetriableNotPoisoned) {
  // Plant a regular file where shard 0's store directory would go, so its
  // per-shard open fails while the other shards succeed.
  ASSERT_TRUE(CreateDirs(JoinPath(options_.data_dir, "s0")).ok());
  const std::string blocker = JoinPath(JoinPath(options_.data_dir, "s0"), "failstore");
  ASSERT_TRUE(WriteStringToFile(blocker, "in the way").ok());

  auto client = MakeClient();
  uint64_t h = 0;
  EXPECT_FALSE(client->OpenStore("failstore", RmwSpec("fail-op"), &h, nullptr).ok());

  // A half-open entry must not satisfy a later open idempotently: once the
  // obstruction is gone, re-opening the same namespace retries the failed
  // shards and the store becomes fully usable.
  ASSERT_EQ(::unlink(blocker.c_str()), 0);
  ASSERT_TRUE(client->OpenStore("failstore", RmwSpec("fail-op"), &h, nullptr).ok());
  const Window w(0, 1000);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(client->RmwPut(h, key, w, "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(client->Flush().ok());
  for (int i = 0; i < 50; ++i) {
    std::string acc;
    ASSERT_TRUE(client->RmwGet(h, "k" + std::to_string(i), w, &acc).ok())
        << "op failed against a store that reported a successful open";
    EXPECT_EQ(acc, "v" + std::to_string(i));
  }
}

TEST_F(NetLoopbackTest, OversizedFrameDropsConnection) {
  // Handshake-free raw socket: claim a payload far beyond the server's limit.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  unsigned char header[8] = {0};
  const uint32_t huge = 1u << 30;  // 1 GiB claimed payload
  std::memcpy(header, &huge, 4);
  ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(header)));

  // The server must close the connection instead of allocating 1 GiB.
  char buf[16];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);  // blocks until close
  EXPECT_EQ(n, 0);
  ::close(fd);

  // And the server stays healthy for well-behaved clients.
  auto client = MakeClient();
  EXPECT_TRUE(client->Ping().ok());
}

// Blocking-socket helpers for the fake servers below.
bool ReadOneRequest(int fd, RequestMessage* request) {
  std::string buf;
  char chunk[4096];
  while (true) {
    Slice input(buf);
    Slice payload;
    bool complete = false;
    if (!TryDecodeFrame(&input, &payload, &complete).ok()) {
      return false;
    }
    if (complete) {
      return DecodeRequest(payload, request).ok();
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return false;
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

void WriteOkResponse(int fd, const RequestMessage& request) {
  ResponseMessage response;
  response.request_id = request.request_id;
  response.results.resize(request.ops.size());
  std::string payload;
  EncodeResponse(response, &payload);
  std::string frame;
  AppendFrame(&frame, payload);
  ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
}

TEST(NetClientStaleFrameTest, LateResponseAfterTimeoutDoesNotPoisonNextRequest) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 2), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  // Fake server: the first connection's reply lands only after the client
  // gave up on it; a second connection is then served promptly.
  std::atomic<bool> stale_sent{false};
  std::thread fake([listen_fd, &stale_sent] {
    const int c1 = ::accept(listen_fd, nullptr, nullptr);
    if (c1 < 0) return;
    // The client probes capabilities on every fresh connection; answer the
    // probe promptly so Connect() succeeds, then delay the reply to the
    // test's Ping until long after the client gave up on it.
    RequestMessage probe1;
    if (ReadOneRequest(c1, &probe1)) {
      WriteOkResponse(c1, probe1);
      RequestMessage req1;
      if (ReadOneRequest(c1, &req1)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(600));
        WriteOkResponse(c1, req1);  // stale: the client timed out long ago
      }
    }
    stale_sent.store(true);
    // Bounded wait for the reconnect, so a regression (client never
    // reconnects) fails the test instead of hanging it on join().
    pollfd pfd = {listen_fd, POLLIN, 0};
    if (::poll(&pfd, 1, 10'000) > 0) {
      const int c2 = ::accept(listen_fd, nullptr, nullptr);
      if (c2 >= 0) {
        // Exactly two requests arrive here: the capability probe (caps are
        // re-learned on every fresh connection) and the retried Ping.
        for (int i = 0; i < 2; ++i) {
          RequestMessage req2;
          if (!ReadOneRequest(c2, &req2)) break;
          WriteOkResponse(c2, req2);
        }
        ::close(c2);
      }
    }
    ::close(c1);
  });

  ClientOptions copts;
  copts.port = ntohs(addr.sin_port);
  copts.request_timeout_ms = 300;
  copts.reconnect_backoff_ms = 1;
  std::unique_ptr<Client> client;
  ASSERT_TRUE(Client::Connect(copts, &client).ok());
  EXPECT_TRUE(client->Ping().IsTimedOut());

  // Wait until the late frame is definitely queued, then issue the next
  // request. The timed-out attempt must have dropped its connection —
  // otherwise this reads the stale frame and fails with an id mismatch.
  while (!stale_sent.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const Status s = client->Ping();
  EXPECT_TRUE(s.ok()) << s.ToString();

  fake.join();
  ::close(listen_fd);
}

TEST(NetClientTimeoutTest, UnresponsivePeerTimesOut) {
  // A listener that accepts but never replies. The client probes
  // capabilities on every connect, so an accepting-but-silent peer is
  // detected at Connect() — kTimedOut once the probe exhausts the
  // deadline — rather than surfacing on the first request.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  ClientOptions copts;
  copts.port = ntohs(addr.sin_port);
  copts.request_timeout_ms = 200;
  copts.reconnect_backoff_ms = 1;
  std::unique_ptr<Client> client;
  const Status s = Client::Connect(copts, &client);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  ::close(listen_fd);
}

TEST(NetClientConnectTest, RefusedConnectionFails) {
  ClientOptions copts;
  copts.port = 1;  // virtually guaranteed closed
  copts.max_reconnect_attempts = 1;
  copts.reconnect_backoff_ms = 1;
  std::unique_ptr<Client> client;
  const Status s = Client::Connect(copts, &client);
  EXPECT_FALSE(s.ok());
}

// The same multi-client workload against explicit reactor pool sizes:
// 1 reactor (every shard owned by one thread, everything inline), 3 reactors
// (one shard each with num_shards=3), and 5 (more reactors than shards, so
// some connections land on pure-I/O reactors and every request they carry is
// a cross-reactor hop).
class NetReactorThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(NetReactorThreadsTest, ConcurrentClientsAcrossShards) {
  const std::string dir = MakeTempDir("net_reactors");
  ServerOptions sopts;
  sopts.num_shards = 3;
  sopts.reactor_threads = GetParam();
  sopts.data_dir = JoinPath(dir, "data");
  sopts.checkpoint_dir = JoinPath(dir, "ckpt");
  std::unique_ptr<Server> server;
  ASSERT_TRUE(Server::Start(sopts, &server).ok());

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions copts;
      copts.port = server->port();
      copts.request_timeout_ms = 20'000;
      std::unique_ptr<Client> client;
      if (!Client::Connect(copts, &client).ok()) {
        ++failures;
        return;
      }
      uint64_t h = 0;
      const std::string name = "t.reactors.c" + std::to_string(c);
      if (!client->OpenStore(name, RmwSpec(name), &h, nullptr).ok()) {
        ++failures;
        return;
      }
      const Window w(0, 1000);
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string key = "k" + std::to_string(i);  // spreads over shards
        if (!client->RmwPut(h, key, w, "v" + std::to_string(i)).ok()) {
          ++failures;
          return;
        }
      }
      if (!client->Flush().ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kOpsPerClient; ++i) {
        std::string acc;
        if (!client->RmwGet(h, "k" + std::to_string(i), w, &acc).ok() ||
            acc != "v" + std::to_string(i)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(0, failures.load()) << "with reactor_threads=" << GetParam();

  server->Stop();
  RemoveDirRecursively(dir).IgnoreError();
}

INSTANTIATE_TEST_SUITE_P(ReactorPoolSizes, NetReactorThreadsTest,
                         ::testing::Values(1, 3, 5));

// The AF_UNIX transport speaks the exact same protocol as TCP: a client
// connected over the socket file and one connected over 127.0.0.1 see each
// other's writes, and the socket file is removed once the server stops.
TEST(NetUnixSocketTest, UnixAndTcpClientsShareState) {
  const std::string dir = MakeTempDir("net_unix");
  ServerOptions sopts;
  sopts.num_shards = 2;
  sopts.data_dir = JoinPath(dir, "data");
  sopts.unix_socket_path = JoinPath(dir, "flowkv.sock");
  std::unique_ptr<Server> server;
  ASSERT_TRUE(Server::Start(sopts, &server).ok());

  ClientOptions uopts;
  uopts.unix_socket_path = sopts.unix_socket_path;
  uopts.request_timeout_ms = 20'000;
  std::unique_ptr<Client> unix_client;
  ASSERT_TRUE(Client::Connect(uopts, &unix_client).ok());

  ClientOptions topts;
  topts.port = server->port();
  topts.request_timeout_ms = 20'000;
  std::unique_ptr<Client> tcp_client;
  ASSERT_TRUE(Client::Connect(topts, &tcp_client).ok());

  const std::string name = "t.unix";
  uint64_t uh = 0, th = 0;
  ASSERT_TRUE(unix_client->OpenStore(name, RmwSpec(name), &uh, nullptr).ok());
  ASSERT_TRUE(tcp_client->OpenStore(name, RmwSpec(name), &th, nullptr).ok());

  const Window w(0, 1000);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(unix_client->RmwPut(uh, "uk" + std::to_string(i), w,
                                    "uv" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(unix_client->Flush().ok());

  for (int i = 0; i < 64; ++i) {
    std::string acc;
    ASSERT_TRUE(tcp_client->RmwGet(th, "uk" + std::to_string(i), w, &acc).ok());
    EXPECT_EQ("uv" + std::to_string(i), acc);
  }
  std::string acc;
  ASSERT_TRUE(tcp_client->RmwPut(th, "tk", w, "tv").ok());
  ASSERT_TRUE(tcp_client->Flush().ok());
  ASSERT_TRUE(unix_client->RmwGet(uh, "tk", w, &acc).ok());
  EXPECT_EQ("tv", acc);

  unix_client.reset();
  tcp_client.reset();
  server->Stop();
  EXPECT_FALSE(FileExists(sopts.unix_socket_path))
      << "socket file should be unlinked at shutdown";
  server.reset();
  RemoveDirRecursively(dir).IgnoreError();
}

}  // namespace
}  // namespace net
}  // namespace flowkv
