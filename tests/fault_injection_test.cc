// Crash-recovery tests built on the fault-injection filesystem
// (fault_injection_fs.h). The core pattern is a *crash sweep*: run a workload
// with a simulated power failure armed at sync point 1, 2, 3, ... until one
// run completes without crashing. After every crash the on-disk tree is
// rewritten to the worst-case POSIX crash image and the store is reopened;
// it must come back cleanly and retain everything it acknowledged as synced.
#include <gtest/gtest.h>

#include <cerrno>
#include <memory>
#include <string>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/common/checkpoint.h"
#include "src/common/env.h"
#include "src/common/fault_injection_fs.h"
#include "src/common/fs_hooks.h"
#include "src/flowkv/aar_store.h"
#include "src/flowkv/aur_store.h"
#include "src/flowkv/rmw_store.h"
#include "src/hashkv/hashkv_store.h"
#include "src/lsm/lsm_store.h"
#include "src/lsm/merge.h"
#include "src/nexmark/aggregates.h"
#include "src/spe/pipeline.h"
#include "src/spe/window_operator.h"

namespace flowkv {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<FaultInjectionFs>();
    InstallFsHooks(fs_.get());
  }
  void TearDown() override {
    fs_->ResetTracking();
    InstallFsHooks(nullptr);
    for (const auto& dir : dirs_) {
      RemoveDirRecursively(dir).IgnoreError();
    }
  }

  std::string TempDir(const std::string& tag) {
    dirs_.push_back(MakeTempDir(tag));
    return dirs_.back();
  }

  // Ends one sweep iteration: applies the crash image if the armed sync point
  // was reached, otherwise just clears tracking. Returns whether it crashed.
  bool FinishIteration() {
    const bool crashed = fs_->crashed();
    if (crashed) {
      Status s = fs_->RestoreCrashImage();
      EXPECT_TRUE(s.ok()) << s.ToString();
    } else {
      fs_->ResetTracking();
    }
    return crashed;
  }

  std::unique_ptr<FaultInjectionFs> fs_;
  std::vector<std::string> dirs_;
};

std::string LsmKey(int batch, int i) {
  return "b" + std::to_string(batch) + "_k" + std::to_string(i);
}
std::string LsmValue(int batch, int i) {
  return "value_" + std::to_string(batch) + "_" + std::to_string(i);
}

// Crash at every sync point of an LSM run of three synced flush batches plus
// a full compaction. Whatever the crash point, the store must reopen cleanly
// and serve every batch whose Flush() was acknowledged.
TEST_F(FaultInjectionTest, LsmCrashSweepRetainsSyncedBatches) {
  constexpr int kBatches = 3;
  constexpr int kPerBatch = 20;
  LsmOptions options;
  options.sync_on_flush = true;

  for (uint64_t crash_point = 1;; ++crash_point) {
    const std::string dir = TempDir("lsm_crash");
    fs_->ResetTracking();
    fs_->CrashAtSyncPoint(crash_point);

    int acked_batches = 0;
    {
      std::unique_ptr<LsmStore> store;
      Status s =
          LsmStore::Open(dir, options, std::make_unique<ListAppendMergeOperator>(), &store);
      if (s.ok()) {
        for (int batch = 0; batch < kBatches; ++batch) {
          bool wrote_all = true;
          for (int i = 0; i < kPerBatch && wrote_all; ++i) {
            wrote_all = store->Put(LsmKey(batch, i), LsmValue(batch, i)).ok();
          }
          if (!wrote_all || !store->Flush().ok()) {
            break;
          }
          ++acked_batches;
        }
        if (acked_batches == kBatches) {
          store->CompactAll().ok();  // the sweep also lands inside compaction
        }
      }
    }
    const bool crashed = FinishIteration();

    std::unique_ptr<LsmStore> reopened;
    Status ro =
        LsmStore::Open(dir, options, std::make_unique<ListAppendMergeOperator>(), &reopened);
    ASSERT_TRUE(ro.ok()) << "crash point " << crash_point << ": " << ro.ToString();
    for (int batch = 0; batch < acked_batches; ++batch) {
      for (int i = 0; i < kPerBatch; ++i) {
        std::string value;
        ASSERT_TRUE(reopened->Get(LsmKey(batch, i), &value).ok())
            << "crash point " << crash_point << " lost acked key " << LsmKey(batch, i);
        EXPECT_EQ(value, LsmValue(batch, i));
      }
    }
    if (!crashed) {
      ASSERT_GT(crash_point, 1u);  // the sweep actually covered sync points
      break;
    }
  }
}

// A compaction that crashes after committing its output but before unlinking
// its inputs must not resurrect deleted keys on reopen.
TEST_F(FaultInjectionTest, LsmCrashSweepNeverResurrectsDeletes) {
  LsmOptions options;
  options.sync_on_flush = true;

  for (uint64_t crash_point = 1;; ++crash_point) {
    const std::string dir = TempDir("lsm_del");
    fs_->ResetTracking();
    fs_->CrashAtSyncPoint(crash_point);

    bool deleted_acked = false;
    {
      std::unique_ptr<LsmStore> store;
      Status s =
          LsmStore::Open(dir, options, std::make_unique<ListAppendMergeOperator>(), &store);
      if (s.ok() && store->Put("doomed", "x").ok() && store->Flush().ok() &&
          store->Delete("doomed").ok() && store->Flush().ok()) {
        deleted_acked = true;
        store->CompactAll().ok();
      }
    }
    const bool crashed = FinishIteration();

    std::unique_ptr<LsmStore> reopened;
    ASSERT_TRUE(
        LsmStore::Open(dir, options, std::make_unique<ListAppendMergeOperator>(), &reopened)
            .ok());
    if (deleted_acked) {
      std::string value;
      EXPECT_TRUE(reopened->Get("doomed", &value).IsNotFound())
          << "crash point " << crash_point << " resurrected a deleted key";
    }
    if (!crashed) {
      break;
    }
  }
}

// Sweeps a crash across RmwStore::CheckpointTo. An acknowledged checkpoint
// must always restore in full; an unacknowledged one must either restore in
// full (the commit raced the crash) or be refused cleanly.
TEST_F(FaultInjectionTest, RmwCheckpointCrashSweep) {
  constexpr int kKeys = 40;
  FlowKvOptions options;
  options.write_buffer_bytes = 256;

  for (uint64_t crash_point = 1;; ++crash_point) {
    const std::string dir = TempDir("rmw_live");
    const std::string ckpt = TempDir("rmw_ckpt");
    fs_->ResetTracking();
    fs_->CrashAtSyncPoint(crash_point);

    bool acked = false;
    {
      std::unique_ptr<RmwStore> store;
      if (RmwStore::Open(dir, options, &store).ok()) {
        bool wrote_all = true;
        for (int i = 0; i < kKeys && wrote_all; ++i) {
          wrote_all =
              store->Put("k" + std::to_string(i), Window(0, 100), "v" + std::to_string(i)).ok();
        }
        acked = wrote_all && store->CheckpointTo(ckpt).ok();
      }
    }
    const bool crashed = FinishIteration();

    std::unique_ptr<RmwStore> restored;
    Status rs = RmwStore::RestoreFrom(ckpt, TempDir("rmw_rest"), options, &restored);
    if (acked) {
      ASSERT_TRUE(rs.ok()) << "crash point " << crash_point << ": " << rs.ToString();
    }
    if (rs.ok()) {
      for (int i = 0; i < kKeys; ++i) {
        std::string acc;
        ASSERT_TRUE(restored->Get("k" + std::to_string(i), Window(0, 100), &acc).ok())
            << "crash point " << crash_point << " key " << i;
        EXPECT_EQ(acc, "v" + std::to_string(i));
      }
    }
    if (!crashed) {
      break;
    }
  }
}

// Same sweep over the AAR store (per-window logs copied into the checkpoint).
TEST_F(FaultInjectionTest, AarCheckpointCrashSweep) {
  constexpr int kTuples = 30;
  FlowKvOptions options;
  options.write_buffer_bytes = 1;  // flush every append
  const Window w(0, 100);

  for (uint64_t crash_point = 1;; ++crash_point) {
    const std::string dir = TempDir("aar_live");
    const std::string ckpt = TempDir("aar_ckpt");
    fs_->ResetTracking();
    fs_->CrashAtSyncPoint(crash_point);

    bool acked = false;
    {
      std::unique_ptr<AarStore> store;
      if (AarStore::Open(dir, options, &store).ok()) {
        bool wrote_all = true;
        for (int i = 0; i < kTuples && wrote_all; ++i) {
          wrote_all = store->Append("k" + std::to_string(i % 5), "v" + std::to_string(i), w).ok();
        }
        acked = wrote_all && store->CheckpointTo(ckpt).ok();
      }
    }
    const bool crashed = FinishIteration();

    std::unique_ptr<AarStore> restored;
    Status rs = AarStore::RestoreFrom(ckpt, TempDir("aar_rest"), options, &restored);
    if (acked) {
      ASSERT_TRUE(rs.ok()) << "crash point " << crash_point << ": " << rs.ToString();
    }
    if (rs.ok() && acked) {
      int total = 0;
      while (true) {
        std::vector<WindowChunkEntry> chunk;
        bool done = false;
        ASSERT_TRUE(restored->GetWindowChunk(w, &chunk, &done).ok());
        if (done) {
          break;
        }
        for (const auto& entry : chunk) {
          total += static_cast<int>(entry.values.size());
        }
      }
      EXPECT_EQ(total, kTuples) << "crash point " << crash_point;
    }
    if (!crashed) {
      break;
    }
  }
}

// Same sweep over the AUR store (data log + index log + meta blob).
TEST_F(FaultInjectionTest, AurCheckpointCrashSweep) {
  constexpr int kWindows = 20;
  FlowKvOptions options;
  options.write_buffer_bytes = 1;

  for (uint64_t crash_point = 1;; ++crash_point) {
    const std::string dir = TempDir("aur_live");
    const std::string ckpt = TempDir("aur_ckpt");
    fs_->ResetTracking();
    fs_->CrashAtSyncPoint(crash_point);

    bool acked = false;
    {
      std::unique_ptr<AurStore> store;
      if (AurStore::Open(dir, options, std::make_unique<SessionEttPredictor>(100), &store)
              .ok()) {
        bool wrote_all = true;
        for (int i = 0; i < kWindows && wrote_all; ++i) {
          Window w(i * 1000, i * 1000 + 100);
          wrote_all =
              store->Append("k" + std::to_string(i), "v" + std::to_string(i), w, i * 1000).ok();
        }
        acked = wrote_all && store->CheckpointTo(ckpt).ok();
      }
    }
    const bool crashed = FinishIteration();

    std::unique_ptr<AurStore> restored;
    Status rs = AurStore::RestoreFrom(ckpt, TempDir("aur_rest"), options,
                                      std::make_unique<SessionEttPredictor>(100), &restored);
    if (acked) {
      ASSERT_TRUE(rs.ok()) << "crash point " << crash_point << ": " << rs.ToString();
    }
    if (rs.ok() && acked) {
      for (int i = 0; i < kWindows; ++i) {
        std::vector<std::string> values;
        ASSERT_TRUE(restored
                        ->Get("k" + std::to_string(i), Window(i * 1000, i * 1000 + 100), &values)
                        .ok())
            << "crash point " << crash_point << " window " << i;
        EXPECT_EQ(values, (std::vector<std::string>{"v" + std::to_string(i)}));
      }
    }
    if (!crashed) {
      break;
    }
  }
}

// HashKV sweep covering two checkpoints with a log-generation rollover
// (Compact) between them. The newest acknowledged checkpoint must restore in
// full; an older acknowledged one stays restorable forever.
TEST_F(FaultInjectionTest, HashKvCheckpointCrashSweepAcrossRollover) {
  HashKvOptions options;
  options.memory_bytes = 4096;  // force spill so snapshots cover both regions
  options.page_bytes = 1024;
  options.index_buckets = 64;

  for (uint64_t crash_point = 1;; ++crash_point) {
    const std::string dir = TempDir("hkv_live");
    const std::string ckpt_a = TempDir("hkv_ckpt_a");
    const std::string ckpt_b = TempDir("hkv_ckpt_b");
    fs_->ResetTracking();
    fs_->CrashAtSyncPoint(crash_point);

    bool acked_a = false, acked_b = false;
    {
      std::unique_ptr<HashKvStore> store;
      if (HashKvStore::Open(dir, options, &store).ok()) {
        bool wrote_all = true;
        for (int i = 0; i < 20 && wrote_all; ++i) {
          wrote_all = store->Upsert("k" + std::to_string(i), "a" + std::to_string(i)).ok();
        }
        acked_a = wrote_all && store->CheckpointTo(ckpt_a).ok();
        if (acked_a) {
          for (int i = 0; i < 40 && wrote_all; ++i) {
            wrote_all = store->Upsert("k" + std::to_string(i), "b" + std::to_string(i)).ok();
          }
          if (wrote_all && store->Delete("k0").ok() && store->Compact().ok()) {
            acked_b = store->CheckpointTo(ckpt_b).ok();
          }
        }
      }
    }
    const bool crashed = FinishIteration();

    if (acked_b) {
      std::unique_ptr<HashKvStore> restored;
      Status rs = HashKvStore::RestoreFrom(ckpt_b, TempDir("hkv_rest_b"), options, &restored);
      ASSERT_TRUE(rs.ok()) << "crash point " << crash_point << ": " << rs.ToString();
      std::string value;
      EXPECT_TRUE(restored->Read("k0", &value).IsNotFound());
      for (int i = 1; i < 40; ++i) {
        ASSERT_TRUE(restored->Read("k" + std::to_string(i), &value).ok())
            << "crash point " << crash_point << " key " << i;
        EXPECT_EQ(value, "b" + std::to_string(i));
      }
    } else if (acked_a) {
      std::unique_ptr<HashKvStore> restored;
      Status rs = HashKvStore::RestoreFrom(ckpt_a, TempDir("hkv_rest_a"), options, &restored);
      ASSERT_TRUE(rs.ok()) << "crash point " << crash_point << ": " << rs.ToString();
      std::string value;
      for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(restored->Read("k" + std::to_string(i), &value).ok())
            << "crash point " << crash_point << " key " << i;
        EXPECT_EQ(value, "a" + std::to_string(i));
      }
    }
    if (!crashed) {
      ASSERT_TRUE(acked_b);  // the clean run must reach the end
      break;
    }
  }
}

// End-to-end: a pipeline checkpoints twice with processing in between; kill
// it at every sync point. CURRENT must always resolve to a fully restorable
// epoch whenever at least one Checkpoint() call was acknowledged.
TEST_F(FaultInjectionTest, PipelineCheckpointKillRestoreSweep) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1024;
  OperatorStateSpec spec;
  spec.name = "count";
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = true;

  for (uint64_t crash_point = 1;; ++crash_point) {
    const std::string dir = TempDir("pipe_live");
    const std::string ckpt = TempDir("pipe_ckpt");
    fs_->ResetTracking();
    fs_->CrashAtSyncPoint(crash_point);

    int acked_checkpoints = 0;
    {
      FlowKvBackendFactory factory(dir, options);
      Pipeline pipeline;
      WindowOperatorConfig config;
      config.name = "count";
      config.assigner = std::make_shared<TumblingWindowAssigner>(1'000'000);
      config.aggregate = std::make_shared<CountAggregate>();
      pipeline.AddOperator(std::make_unique<WindowOperator>(std::move(config)));
      class NullSink : public Collector {
       public:
        Status Emit(const Event&) override { return Status::Ok(); }
      } sink;
      if (pipeline.Open(&factory, 0, &sink).ok()) {
        bool alive = true;
        for (int round = 0; round < 2 && alive; ++round) {
          for (int i = 0; i < 100 && alive; ++i) {
            alive = pipeline.Process(Event("k" + std::to_string(i % 10), "x", i)).ok();
          }
          if (alive && pipeline.Checkpoint(ckpt).ok()) {
            ++acked_checkpoints;
          } else {
            alive = false;
          }
        }
      }
    }
    const bool crashed = FinishIteration();

    std::string epoch_dir;
    Status latest = Pipeline::LatestCheckpoint(ckpt, &epoch_dir);
    if (acked_checkpoints > 0) {
      ASSERT_TRUE(latest.ok()) << "crash point " << crash_point << ": " << latest.ToString();
    }
    if (latest.ok()) {
      std::unique_ptr<FlowKvStore> restored;
      Status rs = FlowKvStore::RestoreFrom(JoinPath(epoch_dir, "op0/h0"), TempDir("pipe_rest"),
                                           options, spec, &restored);
      ASSERT_TRUE(rs.ok()) << "crash point " << crash_point << ": " << rs.ToString();
      std::string acc;
      ASSERT_TRUE(restored->Get("k0", Window(0, 1'000'000), &acc).ok())
          << "crash point " << crash_point;
    }
    if (!crashed) {
      ASSERT_EQ(acked_checkpoints, 2);
      break;
    }
  }
}

// Injected-error paths: a failing fsync surfaces through Flush, and the store
// keeps working once the fault clears.
TEST_F(FaultInjectionTest, InjectedSyncErrorSurfacesAndClears) {
  const std::string dir = TempDir("lsm_eio");
  LsmOptions options;
  options.sync_on_flush = true;
  std::unique_ptr<LsmStore> store;
  ASSERT_TRUE(
      LsmStore::Open(dir, options, std::make_unique<ListAppendMergeOperator>(), &store).ok());
  ASSERT_TRUE(store->Put("k", "v").ok());
  fs_->ResetTracking();  // restart the era: opening the store already synced
  fs_->FailSyncAt(1, EIO);
  EXPECT_FALSE(store->Flush().ok());
  fs_->ClearFaults();
  ASSERT_TRUE(store->Put("k2", "v2").ok());
  ASSERT_TRUE(store->Flush().ok());
  std::string value;
  ASSERT_TRUE(store->Get("k2", &value).ok());
  EXPECT_EQ(value, "v2");
}

// A rename failure while committing a checkpoint leaves no committed
// checkpoint behind.
TEST_F(FaultInjectionTest, InjectedRenameErrorAbortsCheckpointCleanly) {
  const std::string dir = TempDir("rmw_eperm");
  const std::string ckpt = TempDir("rmw_eperm_ckpt");
  FlowKvOptions options;
  std::unique_ptr<RmwStore> store;
  ASSERT_TRUE(RmwStore::Open(dir, options, &store).ok());
  ASSERT_TRUE(store->Put("k", Window(0, 100), "v").ok());
  fs_->FailRenameAt(1, EPERM);
  EXPECT_FALSE(store->CheckpointTo(ckpt).ok());
  std::unique_ptr<RmwStore> restored;
  EXPECT_TRUE(RmwStore::RestoreFrom(ckpt, TempDir("rmw_eperm_rest"), options, &restored)
                  .IsNotFound());
  // The store itself is still healthy and can checkpoint after the fault.
  fs_->ClearFaults();
  const std::string ckpt2 = TempDir("rmw_eperm_ckpt2");
  ASSERT_TRUE(store->CheckpointTo(ckpt2).ok());
  ASSERT_TRUE(RmwStore::RestoreFrom(ckpt2, TempDir("rmw_eperm_rest2"), options, &restored).ok());
}

// A torn SSTable (simulated partial write) is quarantined on recovery, not
// served and not fatal.
TEST_F(FaultInjectionTest, TornSstableIsQuarantinedOnRecovery) {
  const std::string dir = TempDir("lsm_torn");
  LsmOptions options;
  options.sync_on_flush = true;
  {
    std::unique_ptr<LsmStore> store;
    ASSERT_TRUE(
        LsmStore::Open(dir, options, std::make_unique<ListAppendMergeOperator>(), &store).ok());
    ASSERT_TRUE(store->Put("k", "v").ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  std::vector<std::string> names;
  ASSERT_TRUE(ListDir(dir, &names).ok());
  std::string table;
  for (const auto& name : names) {
    if (name.rfind("tbl_", 0) == 0) {
      table = name;
    }
  }
  ASSERT_FALSE(table.empty());
  ASSERT_TRUE(FaultInjectionFs::TruncateTail(JoinPath(dir, table), 5).ok());

  std::unique_ptr<LsmStore> reopened;
  ASSERT_TRUE(
      LsmStore::Open(dir, options, std::make_unique<ListAppendMergeOperator>(), &reopened).ok());
  std::string value;
  EXPECT_TRUE(reopened->Get("k", &value).IsNotFound());
  EXPECT_TRUE(FileExists(JoinPath(dir, JoinPath("quarantine", table))));
}

// A torn AAR log tail is repaired on open: complete records survive, the
// partial one is dropped.
TEST_F(FaultInjectionTest, TornAarTailIsRepairedOnOpen) {
  const std::string dir = TempDir("aar_torn");
  FlowKvOptions options;
  options.write_buffer_bytes = 1;
  const Window w(0, 100);
  {
    std::unique_ptr<AarStore> store;
    ASSERT_TRUE(AarStore::Open(dir, options, &store).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store->Append("k" + std::to_string(i), "vvvv", w).ok());
    }
  }
  std::vector<std::string> names;
  ASSERT_TRUE(ListDir(dir, &names).ok());
  std::string log;
  for (const auto& name : names) {
    if (name.rfind("aar_", 0) == 0) {
      log = name;
    }
  }
  ASSERT_FALSE(log.empty());
  ASSERT_TRUE(FaultInjectionFs::TruncateTail(JoinPath(dir, log), 3).ok());

  std::unique_ptr<AarStore> reopened;
  ASSERT_TRUE(AarStore::Open(dir, options, &reopened).ok());
  int total = 0;
  while (true) {
    std::vector<WindowChunkEntry> chunk;
    bool done = false;
    ASSERT_TRUE(reopened->GetWindowChunk(w, &chunk, &done).ok());
    if (done) {
      break;
    }
    for (const auto& entry : chunk) {
      total += static_cast<int>(entry.values.size());
    }
  }
  EXPECT_EQ(total, 9);  // the torn 10th record is gone, the rest are intact
}

// A torn checkpoint manifest is refused as corrupt rather than half-applied.
TEST_F(FaultInjectionTest, TornCheckpointManifestIsRefused) {
  const std::string dir = TempDir("rmw_torn");
  const std::string ckpt = TempDir("rmw_torn_ckpt");
  FlowKvOptions options;
  std::unique_ptr<RmwStore> store;
  ASSERT_TRUE(RmwStore::Open(dir, options, &store).ok());
  ASSERT_TRUE(store->Put("k", Window(0, 100), "v").ok());
  ASSERT_TRUE(store->CheckpointTo(ckpt).ok());
  ASSERT_TRUE(
      FaultInjectionFs::TruncateTail(JoinPath(ckpt, kCheckpointManifestName), 1).ok());
  std::unique_ptr<RmwStore> restored;
  EXPECT_TRUE(RmwStore::RestoreFrom(ckpt, TempDir("rmw_torn_rest"), options, &restored)
                  .IsCorruption());
}

}  // namespace
}  // namespace flowkv
