// End-to-end observability test (the acceptance test of the obs subsystem):
// runs a small two-worker NEXMark job with tracing and the periodic reporter
// enabled, then parses the emitted Chrome-trace JSON and metrics JSONL and
// checks they contain what the paper's plots are made of — prefetch spans,
// compaction spans, ETT prediction outcomes, and monotonic report samples.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/common/env.h"
#include "src/common/stats.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"
#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/reporter.h"
#include "src/obs/trace.h"
#include "src/spe/job_runner.h"

namespace flowkv {
namespace {

// Minimal recursive-descent JSON well-formedness checker — no values are
// materialized; it only verifies the grammar, which is what the trace/JSONL
// consumers (Perfetto, jq) require.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : p_(text.data()), end_(p_ + text.size()) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return p_ == end_;
  }

 private:
  void SkipWs() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) {
      ++p_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < n || std::strncmp(p_, lit, n) != 0) {
      return false;
    }
    p_ += n;
    return true;
  }

  bool String() {
    if (p_ >= end_ || *p_ != '"') {
      return false;
    }
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) {
          return false;
        }
      }
      ++p_;
    }
    if (p_ >= end_) {
      return false;
    }
    ++p_;  // closing quote
    return true;
  }

  bool Number() {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') {
      ++p_;
    }
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
                         *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    return p_ > start;
  }

  bool Value() {
    SkipWs();
    if (p_ >= end_) {
      return false;
    }
    switch (*p_) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++p_;  // '{'
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (p_ >= end_ || *p_ != ':') {
        return false;
      }
      ++p_;
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      break;
    }
    if (p_ >= end_ || *p_ != '}') {
      return false;
    }
    ++p_;
    return true;
  }

  bool Array() {
    ++p_;  // '['
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      break;
    }
    if (p_ >= end_ || *p_ != ']') {
      return false;
    }
    ++p_;
    return true;
  }

  const char* p_;
  const char* end_;
};

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      nl = text.size();
    }
    if (nl > start) {
      lines.push_back(text.substr(start, nl - start));
    }
    start = nl + 1;
  }
  return lines;
}

// Extracts the integer value of `"key":<int>` from a JSON line (test-local;
// assumes the field exists — asserted by the caller).
bool ExtractInt(const std::string& json, const std::string& key, int64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

class ObsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("obs_test"); }
  void TearDown() override {
    obs::Tracing::Reset();
    RemoveDirRecursively(dir_).IgnoreError();
  }
  std::string dir_;
};

TEST_F(ObsEndToEndTest, TwoWorkerJobEmitsTraceAndMetrics) {
  const std::string trace_path = JoinPath(dir_, "trace.json");
  const std::string metrics_path = JoinPath(dir_, "metrics.jsonl");

  // Q7-Session on FlowKV = the AUR pattern: session windows trigger at
  // data-dependent times, so Gets take the prefetch path, and fetch-and-
  // remove consumption accumulates dead segments until the MSA threshold
  // forces a compaction. A tiny write buffer pushes state to disk fast.
  FlowKvOptions options;
  options.write_buffer_bytes = 32 * 1024;

  NexmarkConfig nexmark;
  nexmark.events_per_worker = 30'000;
  nexmark.num_people = 2'000;
  nexmark.num_auctions = 300;
  nexmark.inter_event_ms = 10;

  QueryParams params;
  params.session_gap_ms = 24'000;
  params.window_size_ms = 480'000;

  JobConfig config;
  config.workers = 2;
  config.watermark_interval_events = 256;
  config.metrics_out_path = metrics_path;
  config.metrics_interval_ms = 20;
  config.trace_out_path = trace_path;

  FlowKvBackendFactory factory(JoinPath(dir_, "store"), options);
  JobReport report = RunJob(
      config, MakeNexmarkSourceFactory(nexmark),
      [&](int worker, Pipeline* pipeline) {
        return BuildNexmarkQuery("q7-session", params, pipeline);
      },
      &factory);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  ASSERT_EQ(report.workers.size(), 2u);

  const StoreStats stats = report.AggregateStoreStats();
  // The workload must actually exercise the machinery the trace records.
  ASSERT_GT(stats.prefetch_misses + stats.prefetch_hits, 0);
  ASSERT_GT(stats.compactions, 0);
  ASSERT_GT(stats.ett_predictions, 0);
  EXPECT_GT(stats.ett_abs_error_ms.count(), 0u);
  EXPECT_EQ(static_cast<uint64_t>(stats.ett_predictions.load()),
            stats.ett_abs_error_ms.count());

  // --- Chrome trace: well-formed JSON with the expected span/instant mix ---
  std::string trace;
  ASSERT_TRUE(ReadWholeFile(trace_path, &trace));
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(JsonChecker(trace).Valid()) << "trace output is not well-formed JSON";
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);

  // >= 1 prefetch span (predictive batch read) and >= 1 compaction span.
  EXPECT_NE(trace.find("\"name\":\"predictive_batch_read\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"prefetch\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"compaction\""), std::string::npos);

  // >= 1 ETT prediction record with both predicted and actual timestamps.
  const size_t ett_pos = trace.find("\"name\":\"ett_outcome\"");
  ASSERT_NE(ett_pos, std::string::npos);
  const size_t ett_end = trace.find('}', trace.find("\"args\"", ett_pos));
  const std::string ett_event = trace.substr(ett_pos, ett_end - ett_pos);
  EXPECT_NE(ett_event.find("\"predicted_ms\":"), std::string::npos);
  EXPECT_NE(ett_event.find("\"actual_ms\":"), std::string::npos);

  // --- Metrics JSONL: every line valid JSON, timestamps never decrease ---
  std::string jsonl;
  ASSERT_TRUE(ReadWholeFile(metrics_path, &jsonl));
  const std::vector<std::string> lines = SplitLines(jsonl);
  ASSERT_GE(lines.size(), 2u) << "expected at least one sample per worker";
  int64_t last_ts = 0;
  bool saw_events = false;
  bool saw_trace_health = false;
  std::vector<std::string> worker_lines;
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonChecker(line).Valid()) << "bad JSONL line: " << line;
    int64_t ts = 0, worker = -1, events_in = 0;
    ASSERT_TRUE(ExtractInt(line, "ts_ms", &ts)) << line;
    EXPECT_GE(ts, last_ts) << "report timestamps must be non-decreasing";
    last_ts = ts;
    // Trace-ring health lines interleave with the per-worker samples while
    // tracing is on; they carry the dropped-event counter instead of worker
    // progress.
    int64_t dropped = -1;
    if (ExtractInt(line, "trace_dropped", &dropped)) {
      EXPECT_GE(dropped, 0);
      saw_trace_health = true;
      continue;
    }
    ASSERT_TRUE(ExtractInt(line, "worker", &worker)) << line;
    ASSERT_TRUE(ExtractInt(line, "events_in", &events_in)) << line;
    EXPECT_TRUE(worker == 0 || worker == 1);
    saw_events |= events_in > 0;
    worker_lines.push_back(line);
  }
  EXPECT_TRUE(saw_events);
  EXPECT_TRUE(saw_trace_health) << "tracing was enabled, expected ring health lines";
  // The final (post-join) samples must account for every ingested event:
  // Stop() emits one last line per worker, so the last two worker lines are
  // the final sample of each of the two workers.
  ASSERT_GE(worker_lines.size(), 2u);
  int64_t w_last = -1, w_prev = -1, e_last = 0, e_prev = 0;
  ASSERT_TRUE(ExtractInt(worker_lines[worker_lines.size() - 1], "worker", &w_last));
  ASSERT_TRUE(ExtractInt(worker_lines[worker_lines.size() - 2], "worker", &w_prev));
  ASSERT_TRUE(ExtractInt(worker_lines[worker_lines.size() - 1], "events_in", &e_last));
  ASSERT_TRUE(ExtractInt(worker_lines[worker_lines.size() - 2], "events_in", &e_prev));
  EXPECT_NE(w_last, w_prev);
  EXPECT_EQ(report.TotalEventsIn(), static_cast<uint64_t>(e_last + e_prev));
}

TEST_F(ObsEndToEndTest, TracingDisabledRecordsNothing) {
  obs::Tracing::Reset();
  ASSERT_FALSE(obs::Tracing::enabled());
  obs::TraceInstant("should_not_appear", "test");
  {
    obs::TraceSpan span("also_not", "test");
    span.AddArg("x", 1);
  }
  EXPECT_EQ(obs::Tracing::EventCount(), 0u);
}

TEST_F(ObsEndToEndTest, TraceRingOverwritesOldest) {
  obs::Tracing::Enable(/*ring_capacity=*/8);
  for (int i = 0; i < 100; ++i) {
    obs::TraceInstant("tick", "test", "i", i);
  }
  obs::Tracing::Disable();
  EXPECT_EQ(obs::Tracing::EventCount(), 8u);
  const std::string path = JoinPath(dir_, "ring.json");
  ASSERT_TRUE(obs::Tracing::ExportChromeTrace(path));
  std::string trace;
  ASSERT_TRUE(ReadWholeFile(path, &trace));
  EXPECT_TRUE(JsonChecker(trace).Valid());
  // The most recent event survived; the first was overwritten.
  EXPECT_NE(trace.find("\"i\":99"), std::string::npos);
  EXPECT_EQ(trace.find("\"i\":0}"), std::string::npos);
}

TEST_F(ObsEndToEndTest, RegistrySnapshotJsonIsWellFormed) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::WorkerScope worker_scope(7);
  obs::PartitionScope part_scope(3, "aur");
  obs::Counter* counter = registry.GetCounter("obs_test_counter");
  counter->Add(41);
  counter->Add(1);
  obs::Gauge* gauge = registry.GetGauge("obs_test_gauge");
  gauge->Set(-5);
  obs::TimerMetric* timer = registry.GetTimer("obs_test_timer");
  timer->Record(1000);
  EXPECT_EQ(counter->Value(), 42);
  EXPECT_EQ(gauge->Value(), -5);
  EXPECT_EQ(timer->Count(), 1);

  const std::string json = registry.SnapshotJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"worker\":7"), std::string::npos);
  EXPECT_NE(json.find("\"partition\":3"), std::string::npos);

  // Same name, different labels -> a distinct instrument.
  {
    obs::PartitionScope other(4, "aur");
    obs::Counter* other_counter = registry.GetCounter("obs_test_counter");
    EXPECT_NE(other_counter, counter);
    // Same labels -> the same instrument back.
    obs::PartitionScope same(3, "aur");
    EXPECT_EQ(registry.GetCounter("obs_test_counter"), counter);
  }
}

TEST_F(ObsEndToEndTest, RegistryAggregatesRegisteredStats) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  StoreStats a, b;
  a.writes = 10;
  a.prefetch_hits = 3;
  b.writes = 5;
  b.io.bytes_read = 1024;
  obs::WorkerScope w0(0);
  uint64_t id_a = registry.RegisterStoreStats(&a, "aur");
  uint64_t id_b;
  {
    obs::WorkerScope w1(1);
    id_b = registry.RegisterStoreStats(&b, "rmw");
  }
  StoreStats all = registry.AggregateStoreStats();
  EXPECT_GE(all.writes.load(), 15);
  StoreStats only_w1 = registry.AggregateStoreStats(/*worker=*/1);
  EXPECT_EQ(only_w1.writes.load(), 5);
  EXPECT_EQ(only_w1.io.bytes_read.load(), 1024);
  EXPECT_EQ(only_w1.prefetch_hits.load(), 0);
  registry.UnregisterStoreStats(id_a);
  registry.UnregisterStoreStats(id_b);
  StoreStats after = registry.AggregateStoreStats(/*worker=*/1);
  EXPECT_EQ(after.writes.load(), 0);
}

}  // namespace
}  // namespace flowkv
