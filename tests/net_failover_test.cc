// Primary → standby replication and client failover. A second flowkv_server
// runs as a hot standby (ReplicaPuller: snapshot shipping + sequenced op
// forwarding, src/net/replica.h); clients list it in
// ClientOptions::standbys. Because replication is synchronous — the primary
// parks a response until the standby acked the sequence carrying its ops —
// an acknowledged write must survive killing the primary at any moment, and
// a NEXMark query that loses its primary mid-run must still produce results
// identical to the embedded reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/backends/remote_backend.h"
#include "src/common/env.h"
#include "src/net/client.h"
#include "src/net/replica.h"
#include "src/net/server.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"
#include "src/spe/job_runner.h"

namespace flowkv {
namespace {

using Results = std::vector<std::tuple<int64_t, std::string, std::string>>;

OperatorStateSpec RmwSpec(const std::string& name) {
  OperatorStateSpec spec;
  spec.name = name;
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = true;
  spec.window_size_ms = 1000;
  return spec;
}

class ResultCollector : public Collector {
 public:
  Status Emit(const Event& event) override {
    results.emplace_back(event.timestamp, event.key, event.value);
    return Status::Ok();
  }
  Results results;
};

struct RunOutcome {
  Status status;
  Results results;
};

// Runs `query`, optionally hard-killing `kill_server` after `kill_at_event`
// events have been processed (0 = never kill).
RunOutcome RunQuery(const std::string& query, StateBackendFactory* factory,
                    const NexmarkConfig& nexmark, const QueryParams& params,
                    int kill_at_event = 0, net::Server* kill_server = nullptr) {
  RunOutcome outcome;
  auto collector = std::make_shared<ResultCollector>();
  Pipeline pipeline;
  outcome.status = BuildNexmarkQuery(query, params, &pipeline);
  if (!outcome.status.ok()) {
    return outcome;
  }
  outcome.status = pipeline.Open(factory, 0, collector.get());
  if (!outcome.status.ok()) {
    return outcome;
  }
  NexmarkSource source(nexmark, 0);
  Event event;
  int64_t max_ts = 0;
  int since_watermark = 0;
  int processed = 0;
  while (source.Next(&event)) {
    if (kill_server != nullptr && ++processed == kill_at_event) {
      kill_server->Stop();  // mid-query hard kill: no drain, no checkpoint
    }
    outcome.status = pipeline.Process(event);
    if (!outcome.status.ok()) {
      return outcome;
    }
    max_ts = event.timestamp;
    if (++since_watermark >= 128) {
      since_watermark = 0;
      outcome.status = pipeline.AdvanceWatermark(max_ts);
      if (!outcome.status.ok()) {
        return outcome;
      }
    }
  }
  outcome.status = pipeline.Finish();
  outcome.results = collector->results;
  std::sort(outcome.results.begin(), outcome.results.end());
  return outcome;
}

class NetFailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("net_failover");

    net::ServerOptions popts;
    popts.num_shards = 2;
    popts.data_dir = JoinPath(dir_, "primary_data");
    popts.checkpoint_dir = JoinPath(dir_, "primary_ckpt");
    ASSERT_TRUE(net::Server::Start(popts, &primary_).ok());

    net::ServerOptions sopts;
    sopts.num_shards = 2;  // must match the primary for kRestoreStore fan-out
    sopts.data_dir = JoinPath(dir_, "standby_data");
    sopts.checkpoint_dir = JoinPath(dir_, "standby_ckpt");
    ASSERT_TRUE(net::Server::Start(sopts, &standby_).ok());
  }

  void TearDown() override {
    if (puller_ != nullptr) {
      puller_->Stop();
    }
    if (standby_ != nullptr) {
      standby_->Stop();
    }
    if (primary_ != nullptr) {
      primary_->Stop();
    }
    RemoveDirRecursively(dir_).IgnoreError();
  }

  // Subscribes the standby to the primary and waits for the initial snapshot
  // to land, so every later acked write is covered by forwarding.
  void StartPuller() {
    net::ReplicaOptions ropts;
    ropts.primary_port = primary_->port();
    ropts.self_port = standby_->port();
    ropts.snapshot_dir = JoinPath(dir_, "standby_snapshot");
    ASSERT_TRUE(net::ReplicaPuller::Start(ropts, &puller_).ok());
    for (int i = 0; i < 200 && !puller_->snapshot_loaded(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_TRUE(puller_->snapshot_loaded()) << "standby never restored a snapshot";
  }

  net::ClientOptions FailoverOptions() {
    net::ClientOptions copts;
    copts.port = primary_->port();
    copts.standbys = {{"127.0.0.1", standby_->port()}};
    copts.request_timeout_ms = 60'000;
    copts.max_retries = 8;
    copts.max_reconnect_attempts = 8;
    copts.reconnect_backoff_ms = 10;
    copts.reconnect_backoff_max_ms = 200;
    copts.jitter_seed = 11;
    return copts;
  }

  std::unique_ptr<net::Client> ClientTo(int port) {
    net::ClientOptions copts;
    copts.port = port;
    std::unique_ptr<net::Client> client;
    EXPECT_TRUE(net::Client::Connect(copts, &client).ok());
    return client;
  }

  std::string dir_;
  std::unique_ptr<net::Server> primary_;
  std::unique_ptr<net::Server> standby_;
  std::unique_ptr<net::ReplicaPuller> puller_;
};

// State written before the standby ever subscribed arrives via the shipped
// snapshot (a fresh barrier checkpoint), not the forward log.
TEST_F(NetFailoverTest, SnapshotShipsPreexistingState) {
  const Window w(0, 1000);
  {
    std::unique_ptr<net::Client> client = ClientTo(primary_->port());
    ASSERT_NE(client, nullptr);
    uint64_t handle = 0;
    StorePattern pattern;
    ASSERT_TRUE(client->OpenStore("repl.pre.h0", RmwSpec("pre"), &handle, &pattern).ok());
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(client->RmwPut(handle, "k" + std::to_string(i), w, "v").ok());
    }
    ASSERT_TRUE(client->Flush().ok());
  }

  StartPuller();

  std::unique_ptr<net::Client> reader = ClientTo(standby_->port());
  ASSERT_NE(reader, nullptr);
  uint64_t handle = 0;
  StorePattern pattern;
  ASSERT_TRUE(reader->OpenStore("repl.pre.h0", RmwSpec("pre"), &handle, &pattern).ok());
  std::string value;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(reader->RmwGet(handle, "k" + std::to_string(i), w, &value).ok())
        << "snapshot lost k" << i;
    EXPECT_EQ(value, "v");
  }
}

// Synchronous forwarding: once the primary acks a write, it is already
// applied on the standby — readable there without any settling delay.
TEST_F(NetFailoverTest, AckedWritesAreOnTheStandbyImmediately) {
  StartPuller();
  const Window w(0, 1000);

  std::unique_ptr<net::Client> writer = ClientTo(primary_->port());
  ASSERT_NE(writer, nullptr);
  uint64_t handle = 0;
  StorePattern pattern;
  ASSERT_TRUE(writer->OpenStore("repl.fwd.h0", RmwSpec("fwd"), &handle, &pattern).ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(writer->RmwPut(handle, "k" + std::to_string(i), w, "v").ok());
  }
  ASSERT_TRUE(writer->Flush().ok());  // returns only after the standby acked

  std::unique_ptr<net::Client> reader = ClientTo(standby_->port());
  ASSERT_NE(reader, nullptr);
  uint64_t rhandle = 0;
  ASSERT_TRUE(reader->OpenStore("repl.fwd.h0", RmwSpec("fwd"), &rhandle, &pattern).ok());
  std::string value;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(reader->RmwGet(rhandle, "k" + std::to_string(i), w, &value).ok())
        << "acked write k" << i << " missing on standby";
    EXPECT_EQ(value, "v");
  }
}

// Kill the primary between two batches: the client fails over to the
// standby, re-opens its stores, and every acked write is still there.
TEST_F(NetFailoverTest, FailoverPreservesAckedWrites) {
  StartPuller();
  const Window w(0, 1000);

  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(FailoverOptions(), &client).ok());
  uint64_t handle = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("repl.fo.h0", RmwSpec("fo"), &handle, &pattern).ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client->RmwPut(handle, "a" + std::to_string(i), w, "va").ok());
  }
  ASSERT_TRUE(client->Flush().ok());

  primary_->Stop();  // hard kill, no drain

  // The same client keeps working: writes and reads fail over transparently.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client->RmwPut(handle, "b" + std::to_string(i), w, "vb").ok());
  }
  const Status flushed = client->Flush();
  ASSERT_TRUE(flushed.ok()) << flushed.ToString();
  EXPECT_EQ(client->endpoint_index(), 1u) << "client should be on the standby";

  std::string value;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client->RmwGet(handle, "a" + std::to_string(i), w, &value).ok())
        << "acked pre-kill write a" << i << " lost in failover";
    EXPECT_EQ(value, "va");
    ASSERT_TRUE(client->RmwGet(handle, "b" + std::to_string(i), w, &value).ok());
    EXPECT_EQ(value, "vb");
  }
}

// The acceptance bar from the issue: a NEXMark query whose primary dies
// mid-run must match the embedded reference exactly. RMW-only queries (q5,
// q12) — idempotent Puts make the at-least-once replay of the in-flight
// batch converge to the exact same state on the standby.
class FailoverEquivalenceTest : public NetFailoverTest,
                                public ::testing::WithParamInterface<std::string> {};

TEST_P(FailoverEquivalenceTest, NexmarkMatchesEmbeddedAcrossPrimaryKill) {
  const std::string query = GetParam();

  NexmarkConfig nexmark;
  nexmark.events_per_worker = 4'000;
  nexmark.num_people = 120;
  nexmark.num_auctions = 120;
  nexmark.inter_event_ms = 10;

  QueryParams params;
  params.window_size_ms = 20'000;
  params.session_gap_ms = 2'000;

  FlowKvBackendFactory embedded(JoinPath(dir_, "embedded_" + query), FlowKvOptions{});
  RunOutcome reference = RunQuery(query, &embedded, nexmark, params);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_FALSE(reference.results.empty());

  StartPuller();
  RemoteBackendFactory remote(FailoverOptions());
  RunOutcome remote_run = RunQuery(query, &remote, nexmark, params,
                                   /*kill_at_event=*/2'000, primary_.get());
  ASSERT_TRUE(remote_run.status.ok()) << remote_run.status.ToString();
  EXPECT_EQ(remote_run.results.size(), reference.results.size());
  EXPECT_EQ(remote_run.results, reference.results)
      << query << " diverged after failing over mid-query";
}

INSTANTIATE_TEST_SUITE_P(RmwQueries, FailoverEquivalenceTest,
                         ::testing::Values("q5", "q12"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace flowkv
