// Tests for the mini stream engine: window assigners, the merging window
// set, timers, the window operator over every pattern, pipelines, and the
// job runner.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "src/backends/memory_backend.h"
#include "src/common/coding.h"
#include "src/nexmark/aggregates.h"
#include "src/spe/job_runner.h"
#include "src/spe/merging_window_set.h"
#include "src/spe/pipeline.h"
#include "src/spe/timer_service.h"
#include "src/spe/window.h"
#include "src/spe/window_operator.h"

namespace flowkv {
namespace {

TEST(WindowAssignerTest, TumblingBoundaries) {
  TumblingWindowAssigner assigner(100);
  std::vector<Window> windows;
  assigner.AssignWindows(250, &windows);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], Window(200, 300));
  windows.clear();
  assigner.AssignWindows(0, &windows);
  EXPECT_EQ(windows[0], Window(0, 100));
  windows.clear();
  assigner.AssignWindows(99, &windows);
  EXPECT_EQ(windows[0], Window(0, 100));
  windows.clear();
  assigner.AssignWindows(100, &windows);
  EXPECT_EQ(windows[0], Window(100, 200));
  windows.clear();
  assigner.AssignWindows(-1, &windows);  // negative timestamps
  EXPECT_EQ(windows[0], Window(-100, 0));
}

TEST(WindowAssignerTest, SlidingAssignsAllCoveringWindows) {
  SlidingWindowAssigner assigner(100, 50);
  std::vector<Window> windows;
  assigner.AssignWindows(125, &windows);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], Window(100, 200));
  EXPECT_EQ(windows[1], Window(50, 150));
  // Element at an exact slide boundary.
  windows.clear();
  assigner.AssignWindows(100, &windows);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], Window(100, 200));
  EXPECT_EQ(windows[1], Window(50, 150));
}

TEST(WindowAssignerTest, SessionProtoWindow) {
  SessionWindowAssigner assigner(30);
  std::vector<Window> windows;
  assigner.AssignWindows(70, &windows);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], Window(70, 100));
  EXPECT_TRUE(assigner.RequiresMerging());
  EXPECT_EQ(assigner.session_gap(), 30);
}

TEST(WindowAssignerTest, AlignmentClassification) {
  EXPECT_TRUE(IsAlignedRead(WindowKind::kTumbling));
  EXPECT_TRUE(IsAlignedRead(WindowKind::kSliding));
  EXPECT_TRUE(IsAlignedRead(WindowKind::kGlobal));
  EXPECT_FALSE(IsAlignedRead(WindowKind::kSession));
  EXPECT_FALSE(IsAlignedRead(WindowKind::kCount));
  EXPECT_FALSE(IsAlignedRead(WindowKind::kCustom));
}

TEST(WindowTest, OrderPreservingEncoding) {
  std::vector<int64_t> values = {INT64_MIN, -1000, -1, 0, 1, 1000, INT64_MAX};
  std::vector<std::string> encoded;
  for (int64_t v : values) {
    std::string buf;
    OrderPreservingEncode64(&buf, v);
    EXPECT_EQ(OrderPreservingDecode64(buf.data()), v);
    encoded.push_back(buf);
  }
  for (size_t i = 1; i < encoded.size(); ++i) {
    EXPECT_LT(encoded[i - 1], encoded[i]);
  }
}

TEST(StorePatternTest, ClassificationMatchesPaper) {
  EXPECT_EQ(ClassifyPattern(true, WindowKind::kTumbling), StorePattern::kReadModifyWrite);
  EXPECT_EQ(ClassifyPattern(true, WindowKind::kSession), StorePattern::kReadModifyWrite);
  EXPECT_EQ(ClassifyPattern(false, WindowKind::kTumbling), StorePattern::kAppendAligned);
  EXPECT_EQ(ClassifyPattern(false, WindowKind::kSliding), StorePattern::kAppendAligned);
  EXPECT_EQ(ClassifyPattern(false, WindowKind::kSession), StorePattern::kAppendUnaligned);
  // Custom window functions conservatively map to Unaligned (§3.1).
  EXPECT_EQ(ClassifyPattern(false, WindowKind::kCustom), StorePattern::kAppendUnaligned);
}

TEST(CustomWindowTest, UserAssignerDefaultsToUnaligned) {
  CustomWindowAssigner assigner([](int64_t ts, std::vector<Window>* out) {
    // Irregular, data-dependent windows FlowKV cannot introspect.
    out->emplace_back(ts - ts % 7, ts - ts % 7 + 7);
  });
  EXPECT_EQ(assigner.kind(), WindowKind::kCustom);
  EXPECT_EQ(assigner.alignment_hint(), ReadAlignmentHint::kDefault);
  EXPECT_EQ(ClassifyPattern(false, assigner.kind(), assigner.alignment_hint()),
            StorePattern::kAppendUnaligned);
  std::vector<Window> windows;
  assigner.AssignWindows(15, &windows);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], Window(14, 21));
}

TEST(CustomWindowTest, AlignedHintUpgradesToAar) {
  // Paper §8: an @AlignedRead-style annotation lets FlowKV deploy the
  // specialized aligned store for a custom window function.
  CustomWindowAssigner assigner(
      [](int64_t ts, std::vector<Window>* out) {
        out->emplace_back(ts - ts % 100, ts - ts % 100 + 100);
      },
      ReadAlignmentHint::kAligned);
  EXPECT_EQ(ClassifyPattern(false, assigner.kind(), assigner.alignment_hint()),
            StorePattern::kAppendAligned);
  // Hints never override the incremental => RMW rule.
  EXPECT_EQ(ClassifyPattern(true, assigner.kind(), assigner.alignment_hint()),
            StorePattern::kReadModifyWrite);
}

TEST(MergingWindowSetTest, DisjointWindowsStaySeparate) {
  MergingWindowSet set;
  auto r1 = set.AddWindow("k", Window(0, 30));
  auto r2 = set.AddWindow("k", Window(100, 130));
  EXPECT_EQ(r1.merged, Window(0, 30));
  EXPECT_EQ(r2.merged, Window(100, 130));
  EXPECT_EQ(set.ActiveCount("k"), 2u);
}

TEST(MergingWindowSetTest, ExtensionKeepsInitialStateWindow) {
  MergingWindowSet set;
  auto r1 = set.AddWindow("k", Window(0, 30));
  auto r2 = set.AddWindow("k", Window(20, 50));  // overlaps -> extend
  EXPECT_EQ(r2.merged, Window(0, 50));
  EXPECT_EQ(r2.state_window, r1.state_window);
  EXPECT_TRUE(r2.absorbed_state_windows.empty());
  ASSERT_EQ(r2.replaced_windows.size(), 1u);
  EXPECT_EQ(r2.replaced_windows[0], Window(0, 30));
  EXPECT_EQ(set.ActiveCount("k"), 1u);
}

TEST(MergingWindowSetTest, BridgeMergesTwoStatefulWindows) {
  MergingWindowSet set;
  set.AddWindow("k", Window(0, 30));
  set.AddWindow("k", Window(60, 90));
  // A late tuple bridges the two sessions.
  auto r = set.AddWindow("k", Window(25, 65));
  EXPECT_EQ(r.merged, Window(0, 90));
  EXPECT_EQ(r.state_window, Window(0, 30));
  ASSERT_EQ(r.absorbed_state_windows.size(), 1u);
  EXPECT_EQ(r.absorbed_state_windows[0], Window(60, 90));
  EXPECT_EQ(r.replaced_windows.size(), 2u);
  EXPECT_EQ(set.ActiveCount("k"), 1u);
}

TEST(MergingWindowSetTest, KeysAreIndependent) {
  MergingWindowSet set;
  set.AddWindow("a", Window(0, 30));
  auto r = set.AddWindow("b", Window(10, 40));
  EXPECT_EQ(r.merged, Window(10, 40));  // no cross-key merge
  EXPECT_EQ(set.TotalActive(), 2u);
}

TEST(MergingWindowSetTest, RetireRemoves) {
  MergingWindowSet set;
  auto r = set.AddWindow("k", Window(0, 30));
  set.Retire("k", r.merged);
  EXPECT_EQ(set.ActiveCount("k"), 0u);
}

TEST(TimerServiceTest, PopDueInOrderAndCoalesce) {
  TimerService timers;
  timers.Register(Timer{30, "b", Window(0, 30), Window(0, 30)});
  timers.Register(Timer{10, "a", Window(0, 10), Window(0, 10)});
  timers.Register(Timer{10, "a", Window(0, 10), Window(0, 10)});  // duplicate
  timers.Register(Timer{50, "c", Window(0, 50), Window(0, 50)});
  EXPECT_EQ(timers.size(), 3u);
  auto due = timers.PopDue(30);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].time, 10);
  EXPECT_EQ(due[1].time, 30);
  EXPECT_EQ(timers.size(), 1u);
}

TEST(TimerServiceTest, DeleteRemovesExactTimer) {
  TimerService timers;
  timers.Register(Timer{10, "a", Window(0, 10), Window(0, 10)});
  timers.Register(Timer{10, "b", Window(0, 10), Window(0, 10)});
  timers.Delete(10, "a", Window(0, 10));
  auto due = timers.PopDue(100);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].key, "b");
}

// ---------------------------------------------------------------------------
// WindowOperator end-to-end over the memory backend.

class CaptureCollector : public Collector {
 public:
  Status Emit(const Event& event) override {
    events.push_back(event);
    return Status::Ok();
  }
  std::vector<Event> events;
};

// Emits the comma-joined values for easy assertions.
class ConcatProcess : public ProcessWindowFunction {
 public:
  Status Process(const Slice& key, const Window& window,
                 const std::vector<std::string>& values, const EmitFn& emit) const override {
    std::string joined;
    for (const auto& v : values) {
      joined += v;
      joined += ",";
    }
    return emit(std::move(joined));
  }
};

class WindowOperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    factory_ = std::make_unique<MemoryBackendFactory>();
    ASSERT_TRUE(factory_->CreateBackend(0, "op", &backend_).ok());
  }

  std::unique_ptr<WindowOperator> MakeRmwCount(std::shared_ptr<WindowAssigner> assigner) {
    WindowOperatorConfig config;
    config.name = "op";
    config.assigner = std::move(assigner);
    config.aggregate = std::make_shared<CountAggregate>();
    auto op = std::make_unique<WindowOperator>(std::move(config));
    EXPECT_TRUE(op->Open(backend_.get()).ok());
    return op;
  }

  std::unique_ptr<WindowOperator> MakeProcess(std::shared_ptr<WindowAssigner> assigner,
                                              std::shared_ptr<ProcessWindowFunction> fn) {
    WindowOperatorConfig config;
    config.name = "op";
    config.assigner = std::move(assigner);
    config.process = std::move(fn);
    auto op = std::make_unique<WindowOperator>(std::move(config));
    EXPECT_TRUE(op->Open(backend_.get()).ok());
    return op;
  }

  std::unique_ptr<MemoryBackendFactory> factory_;
  std::unique_ptr<StateBackend> backend_;
};

TEST_F(WindowOperatorTest, TumblingRmwCountsPerKeyPerWindow) {
  auto op = MakeRmwCount(std::make_shared<TumblingWindowAssigner>(100));
  EXPECT_EQ(op->pattern(), StorePattern::kReadModifyWrite);
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(Event("a", "x", 10), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(Event("a", "x", 20), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(Event("b", "x", 30), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(Event("a", "x", 150), &out).ok());
  EXPECT_TRUE(out.events.empty());
  ASSERT_TRUE(op->OnWatermark(99, &out).ok());
  ASSERT_EQ(out.events.size(), 2u);  // window [0,100): keys a and b
  std::map<std::string, uint64_t> counts;
  for (const auto& e : out.events) {
    counts[e.key] = DecodeFixed64(e.value.data());
    EXPECT_EQ(e.timestamp, 99);
  }
  EXPECT_EQ(counts["a"], 2u);
  EXPECT_EQ(counts["b"], 1u);
  out.events.clear();
  ASSERT_TRUE(op->Finish(&out).ok());
  ASSERT_EQ(out.events.size(), 1u);  // window [100,200): key a
  EXPECT_EQ(DecodeFixed64(out.events[0].value.data()), 1u);
}

TEST_F(WindowOperatorTest, SlidingReplicatesAcrossWindows) {
  auto op = MakeRmwCount(std::make_shared<SlidingWindowAssigner>(100, 50));
  CaptureCollector out;
  // ts=75 belongs to [50,150) and [0,100).
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 75), &out).ok());
  ASSERT_TRUE(op->Finish(&out).ok());
  ASSERT_EQ(out.events.size(), 2u);
  for (const auto& e : out.events) {
    EXPECT_EQ(DecodeFixed64(e.value.data()), 1u);
  }
}

TEST_F(WindowOperatorTest, SessionRmwMergesAcrossGaps) {
  auto op = MakeRmwCount(std::make_shared<SessionWindowAssigner>(30));
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 0), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 20), &out).ok());   // extends
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 100), &out).ok());  // new session
  ASSERT_TRUE(op->OnWatermark(60, &out).ok());
  ASSERT_EQ(out.events.size(), 1u);  // first session [0,50) fired
  EXPECT_EQ(DecodeFixed64(out.events[0].value.data()), 2u);
  EXPECT_EQ(out.events[0].timestamp, 49);
  out.events.clear();
  ASSERT_TRUE(op->Finish(&out).ok());
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(DecodeFixed64(out.events[0].value.data()), 1u);
}

TEST_F(WindowOperatorTest, SessionRmwBridgeMergeFoldsAccumulators) {
  auto op = MakeRmwCount(std::make_shared<SessionWindowAssigner>(30));
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 0), &out).ok());    // session A: [0,30)
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 100), &out).ok());  // session B: [100,130)
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 50), &out).ok());   // session C: [50,80)
  // This tuple's proto-window [70,100) bridges sessions B and C, forcing a
  // merge of two windows that both already hold state.
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 70), &out).ok());
  ASSERT_TRUE(op->Finish(&out).ok());
  // Session A stays separate (count 1); B+C+bridge merge (count 3).
  ASSERT_EQ(out.events.size(), 2u);
  std::multiset<uint64_t> counts;
  for (const auto& e : out.events) {
    counts.insert(DecodeFixed64(e.value.data()));
  }
  EXPECT_EQ(counts, (std::multiset<uint64_t>{1, 3}));
}

TEST_F(WindowOperatorTest, AlignedAppendProcessesWholeWindow) {
  auto op = MakeProcess(std::make_shared<TumblingWindowAssigner>(100),
                        std::make_shared<ConcatProcess>());
  EXPECT_EQ(op->pattern(), StorePattern::kAppendAligned);
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(Event("a", "1", 10), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(Event("a", "2", 20), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(Event("b", "9", 30), &out).ok());
  ASSERT_TRUE(op->OnWatermark(100, &out).ok());
  ASSERT_EQ(out.events.size(), 2u);
  std::map<std::string, std::string> results;
  for (const auto& e : out.events) {
    results[e.key] = e.value;
  }
  EXPECT_EQ(results["a"], "1,2,");
  EXPECT_EQ(results["b"], "9,");
}

TEST_F(WindowOperatorTest, UnalignedSessionAppendFiresPerKey) {
  auto op = MakeProcess(std::make_shared<SessionWindowAssigner>(30),
                        std::make_shared<ConcatProcess>());
  EXPECT_EQ(op->pattern(), StorePattern::kAppendUnaligned);
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(Event("a", "1", 0), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(Event("b", "2", 10), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(Event("a", "3", 20), &out).ok());
  // a's session spans [0,50) after extension; b's ends at 40.
  ASSERT_TRUE(op->OnWatermark(35, &out).ok());
  EXPECT_TRUE(out.events.empty());
  ASSERT_TRUE(op->OnWatermark(48, &out).ok());
  ASSERT_EQ(out.events.size(), 1u);  // b fired at 39; a's timer is at 49
  EXPECT_EQ(out.events[0].key, "b");
  out.events.clear();
  ASSERT_TRUE(op->Finish(&out).ok());
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].key, "a");
  EXPECT_EQ(out.events[0].value, "1,3,");
}

TEST_F(WindowOperatorTest, CountWindowsFireOnCount) {
  auto op = MakeProcess(std::make_shared<CountWindowAssigner>(3),
                        std::make_shared<ConcatProcess>());
  EXPECT_EQ(op->pattern(), StorePattern::kAppendUnaligned);
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(Event("k", "1", 0), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(Event("k", "2", 10), &out).ok());
  EXPECT_TRUE(out.events.empty());
  ASSERT_TRUE(op->OnWatermark(1000000, &out).ok());
  EXPECT_TRUE(out.events.empty());  // count windows don't fire on watermarks
  ASSERT_TRUE(op->ProcessEvent(Event("k", "3", 20), &out).ok());
  ASSERT_EQ(out.events.size(), 1u);  // fired on the 3rd element
  EXPECT_EQ(out.events[0].value, "1,2,3,");
  out.events.clear();
  ASSERT_TRUE(op->ProcessEvent(Event("k", "4", 30), &out).ok());
  ASSERT_TRUE(op->Finish(&out).ok());  // partial window flushed at EOS
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].value, "4,");
}

TEST_F(WindowOperatorTest, CustomAssignerWithAlignedHintUsesAarPath) {
  // A custom assigner equivalent to 100 ms tumbling windows, annotated
  // @AlignedRead: the operator must run it through the AAR machinery and
  // produce the same results the built-in tumbling assigner would.
  auto op = MakeProcess(
      std::make_shared<CustomWindowAssigner>(
          [](int64_t ts, std::vector<Window>* out) {
            int64_t start = ts - (ts % 100 + 100) % 100;
            out->emplace_back(start, start + 100);
          },
          ReadAlignmentHint::kAligned),
      std::make_shared<ConcatProcess>());
  EXPECT_EQ(op->pattern(), StorePattern::kAppendAligned);
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(Event("a", "1", 10), &out).ok());
  ASSERT_TRUE(op->ProcessEvent(Event("a", "2", 20), &out).ok());
  ASSERT_TRUE(op->OnWatermark(99, &out).ok());
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].value, "1,2,");
}

TEST_F(WindowOperatorTest, LateEventsAreDroppedAfterWindowFires) {
  WindowOperatorConfig config;
  config.name = "op";
  config.assigner = std::make_shared<TumblingWindowAssigner>(100);
  config.aggregate = std::make_shared<CountAggregate>();
  auto op = std::make_unique<WindowOperator>(std::move(config));
  ASSERT_TRUE(op->Open(backend_.get()).ok());
  CaptureCollector out;
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 10), &out).ok());
  ASSERT_TRUE(op->OnWatermark(150, &out).ok());  // [0,100) fired
  ASSERT_EQ(out.events.size(), 1u);
  // Event for the already-fired window: dropped, no duplicate firing.
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 50), &out).ok());
  EXPECT_EQ(op->late_events_dropped(), 1);
  // Event for the current window [100,200) is NOT late.
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 160), &out).ok());
  EXPECT_EQ(op->late_events_dropped(), 1);
  out.events.clear();
  ASSERT_TRUE(op->Finish(&out).ok());
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(DecodeFixed64(out.events[0].value.data()), 1u);
}

TEST_F(WindowOperatorTest, AllowedLatenessAdmitsSlightlyLateEvents) {
  WindowOperatorConfig config;
  config.name = "op";
  config.assigner = std::make_shared<TumblingWindowAssigner>(100);
  config.aggregate = std::make_shared<CountAggregate>();
  config.allowed_lateness_ms = 1000;
  auto op = std::make_unique<WindowOperator>(std::move(config));
  ASSERT_TRUE(op->Open(backend_.get()).ok());
  CaptureCollector out;
  ASSERT_TRUE(op->OnWatermark(150, &out).ok());
  // Within the lateness slack: admitted (fires again at Finish).
  ASSERT_TRUE(op->ProcessEvent(Event("k", "x", 50), &out).ok());
  EXPECT_EQ(op->late_events_dropped(), 0);
  ASSERT_TRUE(op->Finish(&out).ok());
  ASSERT_EQ(out.events.size(), 1u);
}

TEST_F(WindowOperatorTest, GlobalWindowFiresOnlyAtFinish) {
  auto op = MakeRmwCount(std::make_shared<GlobalWindowAssigner>());
  CaptureCollector out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(op->ProcessEvent(Event("k", "x", i * 1000), &out).ok());
  }
  ASSERT_TRUE(op->OnWatermark(1'000'000'000, &out).ok());
  EXPECT_TRUE(out.events.empty());
  ASSERT_TRUE(op->Finish(&out).ok());
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(DecodeFixed64(out.events[0].value.data()), 10u);
}

// ---------------------------------------------------------------------------
// Pipeline and JobRunner.

TEST(PipelineTest, ChainsOperatorsAndWatermarksInOrder) {
  MemoryBackendFactory factory;
  Pipeline pipeline;
  WindowOperatorConfig config;
  config.name = "count";
  config.assigner = std::make_shared<TumblingWindowAssigner>(100);
  config.aggregate = std::make_shared<CountAggregate>();
  pipeline.AddOperator(std::make_unique<WindowOperator>(std::move(config)));
  pipeline.AddOperator(std::make_unique<MapOperator>("tag", [](const Event& e) {
    return Event(e.key, "tagged", e.timestamp);
  }));
  CaptureCollector sink;
  ASSERT_TRUE(pipeline.Open(&factory, 0, &sink).ok());
  ASSERT_TRUE(pipeline.Process(Event("k", "x", 10)).ok());
  ASSERT_TRUE(pipeline.AdvanceWatermark(100).ok());
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].value, "tagged");
}

TEST(PipelineTest, ConsecutiveWindowOperatorsCascade) {
  // Outputs of the first window feed the second (Q5 shape): stage-1 fires
  // during the same watermark advance feed stage-2 before its own timers run.
  MemoryBackendFactory factory;
  Pipeline pipeline;
  WindowOperatorConfig c1;
  c1.name = "w1";
  c1.assigner = std::make_shared<TumblingWindowAssigner>(100);
  c1.aggregate = std::make_shared<CountAggregate>();
  pipeline.AddOperator(std::make_unique<WindowOperator>(std::move(c1)));
  WindowOperatorConfig c2;
  c2.name = "w2";
  c2.assigner = std::make_shared<TumblingWindowAssigner>(100);
  c2.aggregate = std::make_shared<CountAggregate>();
  pipeline.AddOperator(std::make_unique<WindowOperator>(std::move(c2)));
  CaptureCollector sink;
  ASSERT_TRUE(pipeline.Open(&factory, 0, &sink).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pipeline.Process(Event("k", "x", 10 + i)).ok());
  }
  ASSERT_TRUE(pipeline.AdvanceWatermark(99).ok());
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(DecodeFixed64(sink.events[0].value.data()), 1u);  // one w1 output
}

class VectorSource : public SourceIterator {
 public:
  explicit VectorSource(std::vector<Event> events) : events_(std::move(events)) {}
  bool Next(Event* event) override {
    if (index_ >= events_.size()) {
      return false;
    }
    *event = events_[index_++];
    return true;
  }

 private:
  std::vector<Event> events_;
  size_t index_ = 0;
};

TEST(JobRunnerTest, MultiWorkerThroughputRun) {
  MemoryBackendFactory factory;
  JobConfig config;
  config.workers = 4;
  config.watermark_interval_events = 10;
  JobReport report = RunJob(
      config,
      [](int worker) -> std::unique_ptr<SourceIterator> {
        std::vector<Event> events;
        for (int i = 0; i < 100; ++i) {
          events.emplace_back("k" + std::to_string(worker), "x", i * 10);
        }
        return std::make_unique<VectorSource>(std::move(events));
      },
      [](int worker, Pipeline* pipeline) {
        WindowOperatorConfig config;
        config.name = "count";
        config.assigner = std::make_shared<TumblingWindowAssigner>(100);
        config.aggregate = std::make_shared<CountAggregate>();
        pipeline->AddOperator(std::make_unique<WindowOperator>(std::move(config)));
        return Status::Ok();
      },
      &factory);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.TotalEventsIn(), 400u);
  EXPECT_EQ(report.TotalResults(), 4u * 10u);  // 10 windows per worker
  EXPECT_GT(report.Throughput(), 0.0);
}

TEST(JobRunnerTest, MemoryBackendOomFailsTheJob) {
  MemoryBackendFactory factory(/*capacity_bytes=*/1024);
  JobConfig config;
  JobReport report = RunJob(
      config,
      [](int worker) -> std::unique_ptr<SourceIterator> {
        std::vector<Event> events;
        for (int i = 0; i < 10000; ++i) {
          events.emplace_back("k", std::string(100, 'x'), i);
        }
        return std::make_unique<VectorSource>(std::move(events));
      },
      [](int worker, Pipeline* pipeline) {
        WindowOperatorConfig config;
        config.name = "collect";
        config.assigner = std::make_shared<TumblingWindowAssigner>(1'000'000);
        config.process = std::make_shared<ConcatProcess>();
        pipeline->AddOperator(std::make_unique<WindowOperator>(std::move(config)));
        return Status::Ok();
      },
      &factory);
  EXPECT_TRUE(report.status.IsResourceExhausted()) << report.status.ToString();
}

}  // namespace
}  // namespace flowkv
