// Wire-protocol robustness: frame and message round-trips under randomized
// inputs, plus rejection of truncated, corrupted, and oversized frames. The
// decoder must never crash, over-allocate, or silently accept a damaged
// frame — a corrupt byte stream is detected and surfaced as a Status.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/net/protocol.h"

namespace flowkv {
namespace net {
namespace {

std::string RandomBytes(Random* rng, size_t max_len) {
  std::string out;
  const size_t len = rng->Uniform(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return out;
}

Window RandomWindow(Random* rng) {
  const int64_t start = rng->Range(-1'000'000, 1'000'000);
  return Window(start, start + rng->Range(0, 100'000));
}

// Populates exactly the fields the wire carries for the chosen type (the
// encoding is per-type sparse; off-wire fields stay at their defaults).
OpRequest RandomOpRequest(Random* rng) {
  OpRequest op;
  op.type = static_cast<OpType>(rng->Uniform(12));
  switch (op.type) {
    case OpType::kPing:
      break;
    case OpType::kOpenStore:
      op.ns = "w0.op" + std::to_string(rng->Uniform(100)) + ".h0";
      op.spec.name = "op" + std::to_string(rng->Uniform(100));
      op.spec.window_kind = static_cast<WindowKind>(rng->Uniform(6));
      op.spec.incremental = rng->Bernoulli(0.5);
      op.spec.window_size_ms = rng->Range(0, 100'000);
      op.spec.session_gap_ms = rng->Range(0, 10'000);
      op.spec.alignment_hint = static_cast<ReadAlignmentHint>(rng->Uniform(3));
      break;
    case OpType::kMergeWindows:
      op.store_id = rng->Next() % 1000;
      op.key = RandomBytes(rng, 64);
      for (uint64_t i = 0, n = rng->Uniform(5); i < n; ++i) {
        op.sources.push_back(RandomWindow(rng));
      }
      op.window = RandomWindow(rng);
      break;
    case OpType::kAppendAligned:
    case OpType::kAppendUnaligned:
    case OpType::kRmwPut:
      op.store_id = rng->Next() % 1000;
      op.key = RandomBytes(rng, 64);
      op.value = RandomBytes(rng, 512);
      op.window = RandomWindow(rng);
      if (op.type == OpType::kAppendUnaligned) {
        op.timestamp = rng->Range(-1'000'000, 1'000'000);
      }
      break;
    case OpType::kCheckpoint:
      op.store_id = rng->Next() % 1000;
      op.path = "/tmp/ckpt/" + std::to_string(rng->Uniform(100));
      break;
    case OpType::kGatherStats:
      op.store_id = rng->Next() % 1000;
      break;
    case OpType::kGetWindowChunk:
      op.store_id = rng->Next() % 1000;
      op.window = RandomWindow(rng);
      break;
    default:  // kGetUnaligned, kRmwGet, kRmwRemove
      op.store_id = rng->Next() % 1000;
      op.key = RandomBytes(rng, 64);
      op.window = RandomWindow(rng);
      break;
  }
  return op;
}

void ExpectOpEq(const OpRequest& a, const OpRequest& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.store_id, b.store_id);
  EXPECT_EQ(a.ns, b.ns);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.window, b.window);
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.timestamp, b.timestamp);
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.spec.name, b.spec.name);
  EXPECT_EQ(a.spec.window_kind, b.spec.window_kind);
  EXPECT_EQ(a.spec.incremental, b.spec.incremental);
  EXPECT_EQ(a.spec.window_size_ms, b.spec.window_size_ms);
  EXPECT_EQ(a.spec.session_gap_ms, b.spec.session_gap_ms);
  EXPECT_EQ(a.spec.alignment_hint, b.spec.alignment_hint);
}

TEST(NetFrameTest, RoundTrip) {
  Random rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const std::string payload = RandomBytes(&rng, 4096);
    std::string wire;
    AppendFrame(&wire, payload);
    ASSERT_EQ(wire.size(), payload.size() + kFrameHeaderBytes);

    Slice input(wire);
    Slice decoded;
    bool complete = false;
    ASSERT_TRUE(TryDecodeFrame(&input, &decoded, &complete).ok());
    ASSERT_TRUE(complete);
    EXPECT_EQ(decoded.ToString(), payload);
    EXPECT_TRUE(input.empty());
  }
}

TEST(NetFrameTest, TruncatedFramesNeedMoreBytes) {
  Random rng(11);
  const std::string payload = RandomBytes(&rng, 1024) + "tail";
  std::string wire;
  AppendFrame(&wire, payload);

  // Every strict prefix must report "incomplete" without consuming input.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Slice input(wire.data(), cut);
    Slice decoded;
    bool complete = true;
    ASSERT_TRUE(TryDecodeFrame(&input, &decoded, &complete).ok()) << "cut=" << cut;
    EXPECT_FALSE(complete) << "cut=" << cut;
    EXPECT_EQ(input.size(), cut) << "input must be untouched";
  }
}

TEST(NetFrameTest, CorruptPayloadRejected) {
  Random rng(13);
  int corruption_checked = 0;
  for (int iter = 0; iter < 64; ++iter) {
    const std::string payload = RandomBytes(&rng, 256) + "x";  // never empty
    std::string wire;
    AppendFrame(&wire, payload);

    // Flip one random payload byte: the checksum must catch it.
    std::string damaged = wire;
    const size_t victim = kFrameHeaderBytes + rng.Uniform(payload.size());
    damaged[victim] = static_cast<char>(damaged[victim] ^ (1 + rng.Uniform(255)));

    Slice input(damaged);
    Slice decoded;
    bool complete = false;
    const Status s = TryDecodeFrame(&input, &decoded, &complete);
    if (s.ok()) {
      // A header-length byte flip may turn into "incomplete" — fine too, the
      // frame is never accepted as valid.
      EXPECT_FALSE(complete);
    } else {
      EXPECT_TRUE(s.IsCorruption()) << s.ToString();
      ++corruption_checked;
    }
  }
  EXPECT_GT(corruption_checked, 0);
}

TEST(NetFrameTest, CorruptChecksumRejected) {
  std::string wire;
  AppendFrame(&wire, "hello frame");
  wire[5] ^= 0x40;  // inside the checksum field
  Slice input(wire);
  Slice decoded;
  bool complete = false;
  const Status s = TryDecodeFrame(&input, &decoded, &complete);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(NetFrameTest, OversizedFrameRejected) {
  std::string wire;
  AppendFrame(&wire, std::string(1024, 'a'));
  Slice input(wire);
  Slice decoded;
  bool complete = false;
  // Limit below the payload size: reject before buffering/allocating.
  const Status s = TryDecodeFrame(&input, &decoded, &complete, /*max_payload_bytes=*/512);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();

  // The same frame passes with a sufficient limit.
  Slice ok_input(wire);
  ASSERT_TRUE(TryDecodeFrame(&ok_input, &decoded, &complete, 2048).ok());
  EXPECT_TRUE(complete);
}

TEST(NetFrameTest, PipelinedFramesDecodeInOrder)
{
  std::string wire;
  std::vector<std::string> payloads = {"first", "", "third frame with more bytes"};
  for (const auto& p : payloads) {
    AppendFrame(&wire, p);
  }
  Slice input(wire);
  for (const auto& expected : payloads) {
    Slice decoded;
    bool complete = false;
    ASSERT_TRUE(TryDecodeFrame(&input, &decoded, &complete).ok());
    ASSERT_TRUE(complete);
    EXPECT_EQ(decoded.ToString(), expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(NetMessageTest, RequestRoundTripProperty) {
  Random rng(29);
  for (int iter = 0; iter < 100; ++iter) {
    RequestMessage msg;
    msg.request_id = rng.Next();
    const uint64_t num_ops = rng.Uniform(8);
    for (uint64_t i = 0; i < num_ops; ++i) {
      msg.ops.push_back(RandomOpRequest(&rng));
    }

    std::string payload;
    EncodeRequest(msg, &payload);
    RequestMessage decoded;
    ASSERT_TRUE(DecodeRequest(payload, &decoded).ok());
    ASSERT_EQ(decoded.request_id, msg.request_id);
    ASSERT_EQ(decoded.ops.size(), msg.ops.size());
    for (size_t i = 0; i < msg.ops.size(); ++i) {
      ExpectOpEq(decoded.ops[i], msg.ops[i]);
    }
  }
}

TEST(NetMessageTest, ResponseRoundTripProperty) {
  Random rng(31);
  for (int iter = 0; iter < 100; ++iter) {
    ResponseMessage msg;
    msg.request_id = rng.Next();
    const uint64_t num = rng.Uniform(6);
    for (uint64_t i = 0; i < num; ++i) {
      OpResult r;
      switch (rng.Uniform(5)) {
        case 0:
          r.type = OpType::kGetWindowChunk;
          r.done = rng.Bernoulli(0.5);
          for (uint64_t k = 0, n = rng.Uniform(4); k < n; ++k) {
            WindowChunkEntry e;
            e.key = RandomBytes(&rng, 32);
            for (uint64_t v = 0, m = rng.Uniform(4); v < m; ++v) {
              e.values.push_back(RandomBytes(&rng, 64));
            }
            r.chunk.push_back(std::move(e));
          }
          break;
        case 1:
          r.type = OpType::kGetUnaligned;
          for (uint64_t v = 0, m = rng.Uniform(5); v < m; ++v) {
            r.values.push_back(RandomBytes(&rng, 64));
          }
          break;
        case 2:
          r.type = OpType::kRmwGet;
          if (rng.Bernoulli(0.3)) {
            r.status = Status::NotFound("missing");
          } else {
            r.accumulator = RandomBytes(&rng, 128);
          }
          break;
        case 3:
          r.type = OpType::kOpenStore;
          r.store_id = rng.Next() % 100;
          r.pattern = static_cast<StorePattern>(rng.Uniform(3));
          break;
        default:
          r.type = OpType::kGatherStats;
          if (rng.Bernoulli(0.3)) {
            r.status = Status::TimedOut("deadline");
          } else {
            for (uint64_t f = 0, m = rng.Uniform(4); f < m; ++f) {
              r.stat_fields.emplace_back("field" + std::to_string(f),
                                         rng.Range(-1000, 1000));
            }
          }
          break;
      }
      msg.results.push_back(std::move(r));
    }

    std::string payload;
    EncodeResponse(msg, &payload);
    ResponseMessage decoded;
    ASSERT_TRUE(DecodeResponse(payload, &decoded).ok());
    ASSERT_EQ(decoded.request_id, msg.request_id);
    ASSERT_EQ(decoded.results.size(), msg.results.size());
    for (size_t i = 0; i < msg.results.size(); ++i) {
      const OpResult& a = msg.results[i];
      const OpResult& b = decoded.results[i];
      EXPECT_EQ(a.type, b.type);
      EXPECT_EQ(a.status.code(), b.status.code());
      EXPECT_EQ(a.status.message(), b.status.message());
      if (a.status.ok() || a.status.IsNotFound()) {
        EXPECT_EQ(a.store_id, b.store_id);
        EXPECT_EQ(a.pattern, b.pattern);
        EXPECT_EQ(a.done, b.done);
        EXPECT_EQ(a.values, b.values);
        EXPECT_EQ(a.accumulator, b.accumulator);
        EXPECT_EQ(a.stat_fields, b.stat_fields);
        ASSERT_EQ(a.chunk.size(), b.chunk.size());
        for (size_t k = 0; k < a.chunk.size(); ++k) {
          EXPECT_EQ(a.chunk[k].key, b.chunk[k].key);
          EXPECT_EQ(a.chunk[k].values, b.chunk[k].values);
        }
      }
    }
  }
}

TEST(NetMessageTest, GarbagePayloadNeverCrashes) {
  Random rng(37);
  int rejected = 0;
  for (int iter = 0; iter < 500; ++iter) {
    const std::string garbage = RandomBytes(&rng, 256);
    RequestMessage request;
    ResponseMessage response;
    if (!DecodeRequest(garbage, &request).ok()) ++rejected;
    if (!DecodeResponse(garbage, &response).ok()) ++rejected;
  }
  // Random bytes must be overwhelmingly rejected (a handful may parse as a
  // trivial empty message — that is fine, they are structurally valid).
  EXPECT_GT(rejected, 900);
}

TEST(NetMessageTest, TruncatedMessageRejected) {
  RequestMessage msg;
  msg.request_id = 42;
  OpRequest op;
  op.type = OpType::kRmwPut;
  op.store_id = 3;
  op.key = "some-key";
  op.value = "some-value";
  op.window = Window(100, 200);
  msg.ops.push_back(op);

  std::string payload;
  EncodeRequest(msg, &payload);
  for (size_t cut = 1; cut < payload.size(); ++cut) {
    RequestMessage decoded;
    EXPECT_FALSE(DecodeRequest(Slice(payload.data(), cut), &decoded).ok())
        << "cut=" << cut;
  }
}

TEST(NetMessageTest, TrailingBytesRejected) {
  RequestMessage msg;
  msg.request_id = 1;
  std::string payload;
  EncodeRequest(msg, &payload);
  payload.push_back('\0');
  RequestMessage decoded;
  EXPECT_FALSE(DecodeRequest(payload, &decoded).ok());
}

}  // namespace
}  // namespace net
}  // namespace flowkv
