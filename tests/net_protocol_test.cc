// Wire-protocol robustness: frame and message round-trips under randomized
// inputs, plus rejection of truncated, corrupted, and oversized frames. The
// decoder must never crash, over-allocate, or silently accept a damaged
// frame — a corrupt byte stream is detected and surfaced as a Status.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/coding.h"
#include "src/common/random.h"
#include "src/net/protocol.h"

namespace flowkv {
namespace net {
namespace {

std::string RandomBytes(Random* rng, size_t max_len) {
  std::string out;
  const size_t len = rng->Uniform(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return out;
}

Window RandomWindow(Random* rng) {
  const int64_t start = rng->Range(-1'000'000, 1'000'000);
  return Window(start, start + rng->Range(0, 100'000));
}

// Populates exactly the fields the wire carries for the chosen type (the
// encoding is per-type sparse; off-wire fields stay at their defaults).
OpRequest RandomOpRequest(Random* rng) {
  OpRequest op;
  op.type = static_cast<OpType>(rng->Uniform(kMaxOpType + 1));
  switch (op.type) {
    case OpType::kPing:
      break;
    case OpType::kOpenStore:
    case OpType::kRestoreStore:
      op.ns = "w0.op" + std::to_string(rng->Uniform(100)) + ".h0";
      op.spec.name = "op" + std::to_string(rng->Uniform(100));
      op.spec.window_kind = static_cast<WindowKind>(rng->Uniform(6));
      op.spec.incremental = rng->Bernoulli(0.5);
      op.spec.window_size_ms = rng->Range(0, 100'000);
      op.spec.session_gap_ms = rng->Range(0, 10'000);
      op.spec.alignment_hint = static_cast<ReadAlignmentHint>(rng->Uniform(3));
      if (op.type == OpType::kRestoreStore) {
        op.store_id = rng->Next() % 1000;
        op.path = "/tmp/restore/" + std::to_string(rng->Uniform(100));
      }
      break;
    case OpType::kReplicaSubscribe:
      op.timestamp = rng->Range(0, 1'000'000);
      break;
    case OpType::kSnapshotFile:
      op.path = "s0_st" + std::to_string(rng->Uniform(10)) + "/file";
      op.timestamp = rng->Range(0, 1'000'000);
      op.value = RandomBytes(rng, 512);
      break;
    case OpType::kSnapshotDone:
      op.path = "epoch_" + std::to_string(rng->Uniform(10));
      break;
    case OpType::kMergeWindows:
      op.store_id = rng->Next() % 1000;
      op.key = RandomBytes(rng, 64);
      for (uint64_t i = 0, n = rng->Uniform(5); i < n; ++i) {
        op.sources.push_back(RandomWindow(rng));
      }
      op.window = RandomWindow(rng);
      break;
    case OpType::kAppendAligned:
    case OpType::kAppendUnaligned:
    case OpType::kRmwPut:
      op.store_id = rng->Next() % 1000;
      op.key = RandomBytes(rng, 64);
      op.value = RandomBytes(rng, 512);
      op.window = RandomWindow(rng);
      if (op.type == OpType::kAppendUnaligned) {
        op.timestamp = rng->Range(-1'000'000, 1'000'000);
      }
      break;
    case OpType::kCheckpoint:
      op.store_id = rng->Next() % 1000;
      op.path = "/tmp/ckpt/" + std::to_string(rng->Uniform(100));
      break;
    case OpType::kGatherStats:
      op.store_id = rng->Next() % 1000;
      break;
    case OpType::kStats:
      break;  // no request fields: the snapshot is server-wide
    case OpType::kGetWindowChunk:
    case OpType::kDropWindow:
      op.store_id = rng->Next() % 1000;
      op.window = RandomWindow(rng);
      break;
    case OpType::kEttRegister:
      op.store_id = rng->Next() % 1000;
      op.window = RandomWindow(rng);
      op.timestamp = rng->Range(-1'000'000, 1'000'000);  // next-ETT hint
      break;
    case OpType::kPushChunk:
      break;  // server->client only; carries no request fields
    case OpType::kClusterInfo:
      break;  // no request fields: addresses the server, not a store
    case OpType::kClusterAdmin:
      op.path = rng->Uniform(2) == 0 ? "promote" : "fence";
      op.timestamp = rng->Range(0, 100);  // target epoch (0 = current + 1)
      break;
    default:  // kGetUnaligned, kRmwGet, kRmwRemove
      op.store_id = rng->Next() % 1000;
      op.key = RandomBytes(rng, 64);
      op.window = RandomWindow(rng);
      break;
  }
  return op;
}

void ExpectOpEq(const OpRequest& a, const OpRequest& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.store_id, b.store_id);
  EXPECT_EQ(a.ns, b.ns);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.window, b.window);
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.timestamp, b.timestamp);
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.spec.name, b.spec.name);
  EXPECT_EQ(a.spec.window_kind, b.spec.window_kind);
  EXPECT_EQ(a.spec.incremental, b.spec.incremental);
  EXPECT_EQ(a.spec.window_size_ms, b.spec.window_size_ms);
  EXPECT_EQ(a.spec.session_gap_ms, b.spec.session_gap_ms);
  EXPECT_EQ(a.spec.alignment_hint, b.spec.alignment_hint);
}

TEST(NetFrameTest, RoundTrip) {
  Random rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const std::string payload = RandomBytes(&rng, 4096);
    std::string wire;
    AppendFrame(&wire, payload);
    ASSERT_EQ(wire.size(), payload.size() + kFrameHeaderBytes);

    Slice input(wire);
    Slice decoded;
    bool complete = false;
    ASSERT_TRUE(TryDecodeFrame(&input, &decoded, &complete).ok());
    ASSERT_TRUE(complete);
    EXPECT_EQ(decoded.ToString(), payload);
    EXPECT_TRUE(input.empty());
  }
}

TEST(NetFrameTest, TruncatedFramesNeedMoreBytes) {
  Random rng(11);
  const std::string payload = RandomBytes(&rng, 1024) + "tail";
  std::string wire;
  AppendFrame(&wire, payload);

  // Every strict prefix must report "incomplete" without consuming input.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Slice input(wire.data(), cut);
    Slice decoded;
    bool complete = true;
    ASSERT_TRUE(TryDecodeFrame(&input, &decoded, &complete).ok()) << "cut=" << cut;
    EXPECT_FALSE(complete) << "cut=" << cut;
    EXPECT_EQ(input.size(), cut) << "input must be untouched";
  }
}

TEST(NetFrameTest, CorruptPayloadRejected) {
  Random rng(13);
  int corruption_checked = 0;
  for (int iter = 0; iter < 64; ++iter) {
    const std::string payload = RandomBytes(&rng, 256) + "x";  // never empty
    std::string wire;
    AppendFrame(&wire, payload);

    // Flip one random payload byte: the checksum must catch it.
    std::string damaged = wire;
    const size_t victim = kFrameHeaderBytes + rng.Uniform(payload.size());
    damaged[victim] = static_cast<char>(damaged[victim] ^ (1 + rng.Uniform(255)));

    Slice input(damaged);
    Slice decoded;
    bool complete = false;
    const Status s = TryDecodeFrame(&input, &decoded, &complete);
    if (s.ok()) {
      // A header-length byte flip may turn into "incomplete" — fine too, the
      // frame is never accepted as valid.
      EXPECT_FALSE(complete);
    } else {
      EXPECT_TRUE(s.IsCorruption()) << s.ToString();
      ++corruption_checked;
    }
  }
  EXPECT_GT(corruption_checked, 0);
}

TEST(NetFrameTest, CorruptChecksumRejected) {
  std::string wire;
  AppendFrame(&wire, "hello frame");
  wire[5] ^= 0x40;  // inside the checksum field
  Slice input(wire);
  Slice decoded;
  bool complete = false;
  const Status s = TryDecodeFrame(&input, &decoded, &complete);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(NetFrameTest, OversizedFrameRejected) {
  std::string wire;
  AppendFrame(&wire, std::string(1024, 'a'));
  Slice input(wire);
  Slice decoded;
  bool complete = false;
  // Limit below the payload size: reject before buffering/allocating.
  const Status s = TryDecodeFrame(&input, &decoded, &complete, /*max_payload_bytes=*/512);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();

  // The same frame passes with a sufficient limit.
  Slice ok_input(wire);
  ASSERT_TRUE(TryDecodeFrame(&ok_input, &decoded, &complete, 2048).ok());
  EXPECT_TRUE(complete);
}

TEST(NetFrameTest, PipelinedFramesDecodeInOrder)
{
  std::string wire;
  std::vector<std::string> payloads = {"first", "", "third frame with more bytes"};
  for (const auto& p : payloads) {
    AppendFrame(&wire, p);
  }
  Slice input(wire);
  for (const auto& expected : payloads) {
    Slice decoded;
    bool complete = false;
    ASSERT_TRUE(TryDecodeFrame(&input, &decoded, &complete).ok());
    ASSERT_TRUE(complete);
    EXPECT_EQ(decoded.ToString(), expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(NetMessageTest, RequestRoundTripProperty) {
  Random rng(29);
  for (int iter = 0; iter < 100; ++iter) {
    RequestMessage msg;
    msg.request_id = rng.Next();
    msg.deadline_ms = static_cast<uint32_t>(rng.Uniform(120'000));
    // Half the corpus carries the optional trace-context block.
    if (rng.Bernoulli(0.5)) {
      msg.trace_id = rng.Next() | 1;  // nonzero by construction
      msg.span_id = rng.Next();
      msg.trace_flags = 1;
    }
    const uint64_t num_ops = rng.Uniform(8);
    for (uint64_t i = 0; i < num_ops; ++i) {
      msg.ops.push_back(RandomOpRequest(&rng));
    }

    std::string payload;
    EncodeRequest(msg, &payload);
    RequestMessage decoded;
    ASSERT_TRUE(DecodeRequest(payload, &decoded).ok());
    ASSERT_EQ(decoded.request_id, msg.request_id);
    ASSERT_EQ(decoded.deadline_ms, msg.deadline_ms);
    ASSERT_EQ(decoded.trace_id, msg.trace_id);
    ASSERT_EQ(decoded.span_id, msg.span_id);
    ASSERT_EQ(decoded.trace_flags, msg.trace_flags);
    ASSERT_EQ(decoded.ops.size(), msg.ops.size());
    for (size_t i = 0; i < msg.ops.size(); ++i) {
      ExpectOpEq(decoded.ops[i], msg.ops[i]);
    }
  }
}

// ----- trace-context extension (backward-compatible trailing block) -----

RequestMessage SampleRequest() {
  RequestMessage msg;
  msg.request_id = 77;
  msg.deadline_ms = 1000;
  OpRequest op;
  op.type = OpType::kRmwPut;
  op.store_id = 3;
  op.key = "key";
  op.value = "value";
  op.window = Window(100, 200);
  msg.ops.push_back(op);
  return msg;
}

TEST(NetTraceContextTest, UntracedEncodingIsBytePrefixOfTraced) {
  // The extension must cost zero bytes when tracing is off, and appending
  // the block must be the ONLY change when it is on — that is what keeps
  // old decoders accepting untraced requests unchanged.
  RequestMessage msg = SampleRequest();
  std::string untraced;
  EncodeRequest(msg, &untraced);

  msg.trace_id = 0xABCDEF;
  msg.span_id = 42;
  msg.trace_flags = 1;
  std::string traced;
  EncodeRequest(msg, &traced);

  ASSERT_GT(traced.size(), untraced.size());
  EXPECT_EQ(traced.substr(0, untraced.size()), untraced);
}

TEST(NetTraceContextTest, OldFormatGoldenDecodesWithTracingOff) {
  // A pre-extension encoder's bytes, built by hand: header + one kPing op
  // and nothing after the op list. A new decoder must accept it and leave
  // the trace fields zeroed (tracing silently off).
  std::string payload;
  PutVarint64(&payload, 9);   // request_id
  PutVarint32(&payload, 500);  // deadline_ms
  PutVarint32(&payload, 1);   // num_ops
  PutVarint32(&payload, static_cast<uint32_t>(OpType::kPing));

  RequestMessage decoded;
  ASSERT_TRUE(DecodeRequest(payload, &decoded).ok());
  EXPECT_EQ(decoded.request_id, 9u);
  EXPECT_EQ(decoded.deadline_ms, 500u);
  ASSERT_EQ(decoded.ops.size(), 1u);
  EXPECT_EQ(decoded.ops[0].type, OpType::kPing);
  EXPECT_EQ(decoded.trace_id, 0u);
  EXPECT_EQ(decoded.span_id, 0u);
  EXPECT_EQ(decoded.trace_flags, 0u);
}

TEST(NetTraceContextTest, ZeroTraceIdInTrailingBlockIsCorruption) {
  // trace_id == 0 means "no block"; explicit zero trailing bytes are the
  // pre-extension "trailing garbage" case and must stay rejected.
  RequestMessage msg = SampleRequest();
  std::string payload;
  EncodeRequest(msg, &payload);
  PutVarint64(&payload, 0);  // trace_id = 0
  PutVarint64(&payload, 1);
  PutVarint32(&payload, 1);
  RequestMessage decoded;
  const Status s = DecodeRequest(payload, &decoded);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(NetTraceContextTest, TracedRequestTruncationSweep) {
  // Every strict prefix of a traced request must be rejected — except the
  // one prefix that ends exactly at the end of the op list, which is
  // byte-identical to a valid untraced (old-format) request and therefore
  // MUST decode, with tracing off. That ambiguity is the documented price
  // of backward compatibility (the frame CRC owns truncation detection).
  RequestMessage msg = SampleRequest();
  std::string untraced;
  EncodeRequest(msg, &untraced);
  msg.trace_id = 0x1234'5678'9ABCull;
  msg.span_id = 7;
  msg.trace_flags = 1;
  std::string traced;
  EncodeRequest(msg, &traced);

  for (size_t cut = 1; cut < traced.size(); ++cut) {
    RequestMessage decoded;
    const Status s = DecodeRequest(Slice(traced.data(), cut), &decoded);
    if (cut == untraced.size()) {
      ASSERT_TRUE(s.ok()) << "cut=" << cut;
      EXPECT_EQ(decoded.trace_id, 0u);
    } else {
      EXPECT_FALSE(s.ok()) << "cut=" << cut;
    }
  }

  // The full traced payload round-trips the ids.
  RequestMessage decoded;
  ASSERT_TRUE(DecodeRequest(traced, &decoded).ok());
  EXPECT_EQ(decoded.trace_id, msg.trace_id);
  EXPECT_EQ(decoded.span_id, msg.span_id);
  EXPECT_EQ(decoded.trace_flags, msg.trace_flags);
}

TEST(NetTraceContextTest, BitFlippedTraceBlockNeverCrashes) {
  RequestMessage msg = SampleRequest();
  msg.trace_id = 0xDEAD'BEEFull;
  msg.span_id = 0xFEEDull;
  msg.trace_flags = 1;
  std::string traced;
  EncodeRequest(msg, &traced);
  std::string untraced_equiv;
  {
    RequestMessage plain = SampleRequest();
    EncodeRequest(plain, &untraced_equiv);
  }
  Random rng(71);
  for (size_t pos = untraced_equiv.size(); pos < traced.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = traced;
      damaged[pos] = static_cast<char>(damaged[pos] ^ (1u << bit));
      RequestMessage decoded;
      // Any outcome is legal except a crash or a decoded zero trace id
      // claiming success with leftover bytes; assert only termination and
      // the invariant that success never yields trace_id == 0 with a block.
      const Status s = DecodeRequest(damaged, &decoded);
      if (s.ok() && damaged.size() > untraced_equiv.size()) {
        EXPECT_NE(decoded.trace_id, 0u) << "pos=" << pos << " bit=" << bit;
      }
    }
  }
}

TEST(NetMessageTest, StatsRoundTrip) {
  // kStats request: no op fields; kStats response: one opaque JSON document.
  RequestMessage req;
  req.request_id = 5;
  OpRequest op;
  op.type = OpType::kStats;
  req.ops.push_back(op);
  std::string payload;
  EncodeRequest(req, &payload);
  RequestMessage req_decoded;
  ASSERT_TRUE(DecodeRequest(payload, &req_decoded).ok());
  ASSERT_EQ(req_decoded.ops.size(), 1u);
  EXPECT_EQ(req_decoded.ops[0].type, OpType::kStats);

  ResponseMessage resp;
  resp.request_id = 5;
  OpResult r;
  r.type = OpType::kStats;
  r.stats_json = "{\"server\":{\"requests\":17},\"shards\":[]}";
  resp.results.push_back(r);
  payload.clear();
  EncodeResponse(resp, &payload);
  ResponseMessage resp_decoded;
  ASSERT_TRUE(DecodeResponse(payload, &resp_decoded).ok());
  ASSERT_EQ(resp_decoded.results.size(), 1u);
  EXPECT_EQ(resp_decoded.results[0].type, OpType::kStats);
  EXPECT_EQ(resp_decoded.results[0].stats_json, r.stats_json);
}

TEST(NetMessageTest, ResponseRoundTripProperty) {
  Random rng(31);
  for (int iter = 0; iter < 100; ++iter) {
    ResponseMessage msg;
    msg.request_id = rng.Next();
    const uint64_t num = rng.Uniform(6);
    for (uint64_t i = 0; i < num; ++i) {
      OpResult r;
      switch (rng.Uniform(6)) {
        case 0:
          r.type = OpType::kGetWindowChunk;
          r.done = rng.Bernoulli(0.5);
          for (uint64_t k = 0, n = rng.Uniform(4); k < n; ++k) {
            WindowChunkEntry e;
            e.key = RandomBytes(&rng, 32);
            for (uint64_t v = 0, m = rng.Uniform(4); v < m; ++v) {
              e.values.push_back(RandomBytes(&rng, 64));
            }
            r.chunk.push_back(std::move(e));
          }
          break;
        case 1:
          r.type = OpType::kGetUnaligned;
          for (uint64_t v = 0, m = rng.Uniform(5); v < m; ++v) {
            r.values.push_back(RandomBytes(&rng, 64));
          }
          break;
        case 2:
          r.type = OpType::kRmwGet;
          if (rng.Bernoulli(0.3)) {
            r.status = Status::NotFound("missing");
          } else {
            r.accumulator = RandomBytes(&rng, 128);
          }
          break;
        case 3:
          r.type = OpType::kOpenStore;
          r.store_id = rng.Next() % 100;
          r.pattern = static_cast<StorePattern>(rng.Uniform(3));
          break;
        case 4:
          r.type = OpType::kGatherStats;
          if (rng.Bernoulli(0.3)) {
            r.status = Status::TimedOut("deadline");
          } else {
            for (uint64_t f = 0, m = rng.Uniform(4); f < m; ++f) {
              r.stat_fields.emplace_back("field" + std::to_string(f),
                                         rng.Range(-1000, 1000));
            }
          }
          break;
        default:
          r.type = OpType::kStats;
          r.stats_json = RandomBytes(&rng, 256);  // opaque to the codec
          break;
      }
      msg.results.push_back(std::move(r));
    }

    std::string payload;
    EncodeResponse(msg, &payload);
    ResponseMessage decoded;
    ASSERT_TRUE(DecodeResponse(payload, &decoded).ok());
    ASSERT_EQ(decoded.request_id, msg.request_id);
    ASSERT_EQ(decoded.results.size(), msg.results.size());
    for (size_t i = 0; i < msg.results.size(); ++i) {
      const OpResult& a = msg.results[i];
      const OpResult& b = decoded.results[i];
      EXPECT_EQ(a.type, b.type);
      EXPECT_EQ(a.status.code(), b.status.code());
      EXPECT_EQ(a.status.message(), b.status.message());
      if (a.status.ok() || a.status.IsNotFound()) {
        EXPECT_EQ(a.store_id, b.store_id);
        EXPECT_EQ(a.pattern, b.pattern);
        EXPECT_EQ(a.done, b.done);
        EXPECT_EQ(a.values, b.values);
        EXPECT_EQ(a.accumulator, b.accumulator);
        EXPECT_EQ(a.stat_fields, b.stat_fields);
        EXPECT_EQ(a.stats_json, b.stats_json);
        ASSERT_EQ(a.chunk.size(), b.chunk.size());
        for (size_t k = 0; k < a.chunk.size(); ++k) {
          EXPECT_EQ(a.chunk[k].key, b.chunk[k].key);
          EXPECT_EQ(a.chunk[k].values, b.chunk[k].values);
        }
      }
    }
  }
}

// ----- prefetch push extension (kEttRegister / kPushChunk / kDropWindow) -----

TEST(NetPrefetchProtoTest, EttRegisterRequestRoundTrip) {
  RequestMessage msg;
  msg.request_id = 91;
  OpRequest op;
  op.type = OpType::kEttRegister;
  op.store_id = 12;
  op.window = Window(5'000, 10'000);  // first expected read window
  op.timestamp = 10'000;              // next-ETT estimate hint
  msg.ops.push_back(op);

  std::string payload;
  EncodeRequest(msg, &payload);
  RequestMessage decoded;
  ASSERT_TRUE(DecodeRequest(payload, &decoded).ok());
  ASSERT_EQ(decoded.ops.size(), 1u);
  ExpectOpEq(decoded.ops[0], op);
}

TEST(NetPrefetchProtoTest, DropWindowRequestRoundTrip) {
  RequestMessage msg;
  msg.request_id = 92;
  OpRequest op;
  op.type = OpType::kDropWindow;
  op.store_id = 7;
  op.window = Window(-2'000, 3'000);
  msg.ops.push_back(op);

  std::string payload;
  EncodeRequest(msg, &payload);
  RequestMessage decoded;
  ASSERT_TRUE(DecodeRequest(payload, &decoded).ok());
  ASSERT_EQ(decoded.ops.size(), 1u);
  ExpectOpEq(decoded.ops[0], op);
}

TEST(NetPrefetchProtoTest, PushChunkResponseRoundTripProperty) {
  // An unsolicited push frame: request_id == kPushRequestId, one kPushChunk
  // result carrying (store_id, window, push_seq) + the window's chunk. The
  // chunk payload reuses the kGetWindowChunk encoding verbatim.
  Random rng(83);
  for (int iter = 0; iter < 50; ++iter) {
    ResponseMessage msg;
    msg.request_id = kPushRequestId;
    OpResult r;
    r.type = OpType::kPushChunk;
    r.store_id = rng.Next() % 1000;
    r.window = RandomWindow(&rng);
    r.push_seq = 1 + rng.Next() % 1'000'000;
    r.done = true;
    for (uint64_t k = 0, n = rng.Uniform(5); k < n; ++k) {
      WindowChunkEntry e;
      e.key = RandomBytes(&rng, 32);
      for (uint64_t v = 0, m = rng.Uniform(4); v < m; ++v) {
        e.values.push_back(RandomBytes(&rng, 64));
      }
      r.chunk.push_back(std::move(e));
    }
    msg.results.push_back(std::move(r));

    std::string payload;
    EncodeResponse(msg, &payload);
    ResponseMessage decoded;
    ASSERT_TRUE(DecodeResponse(payload, &decoded).ok());
    ASSERT_EQ(decoded.request_id, kPushRequestId);
    ASSERT_EQ(decoded.results.size(), 1u);
    const OpResult& a = msg.results[0];
    const OpResult& b = decoded.results[0];
    EXPECT_EQ(b.type, OpType::kPushChunk);
    EXPECT_EQ(b.store_id, a.store_id);
    EXPECT_EQ(b.window, a.window);
    EXPECT_EQ(b.push_seq, a.push_seq);
    EXPECT_EQ(b.done, a.done);
    ASSERT_EQ(b.chunk.size(), a.chunk.size());
    for (size_t k = 0; k < a.chunk.size(); ++k) {
      EXPECT_EQ(b.chunk[k].key, a.chunk[k].key);
      EXPECT_EQ(b.chunk[k].values, a.chunk[k].values);
    }
  }
}

TEST(NetPrefetchProtoTest, PushChunkResponseTruncationSweep) {
  // Every strict prefix of a push frame body must be rejected — a push that
  // loses its tail must never decode as a shorter (but valid) chunk, or the
  // client's count-equality coherence check would compare against a lie.
  ResponseMessage msg;
  msg.request_id = kPushRequestId;
  OpResult r;
  r.type = OpType::kPushChunk;
  r.store_id = 3;
  r.window = Window(0, 1'000);
  r.push_seq = 9;
  r.done = true;
  WindowChunkEntry e;
  e.key = "key-a";
  e.values = {"v0", "v1"};
  r.chunk.push_back(e);
  msg.results.push_back(r);
  std::string payload;
  EncodeResponse(msg, &payload);

  for (size_t cut = 0; cut < payload.size(); ++cut) {
    ResponseMessage decoded;
    EXPECT_FALSE(DecodeResponse(Slice(payload.data(), cut), &decoded).ok())
        << "cut=" << cut;
  }
}

TEST(NetPrefetchProtoTest, PrefetchOpsAreAboveLegacyMaxOpType) {
  // Byte-compat contract (protocol.h): a legacy server treats any op id it
  // does not know as a protocol error and drops the connection — which is
  // exactly why the client gates these ops behind the caps.prefetch_push
  // probe. This pins the ids so a renumbering cannot silently break the
  // capability gate.
  EXPECT_EQ(static_cast<uint32_t>(OpType::kEttRegister), 17u);
  EXPECT_EQ(static_cast<uint32_t>(OpType::kPushChunk), 18u);
  EXPECT_EQ(static_cast<uint32_t>(OpType::kDropWindow), 19u);
  EXPECT_EQ(static_cast<uint32_t>(OpType::kClusterInfo), 20u);
  EXPECT_EQ(static_cast<uint32_t>(OpType::kClusterAdmin), 21u);
  EXPECT_EQ(kMaxOpType, static_cast<uint32_t>(OpType::kClusterAdmin));
  EXPECT_EQ(kPushRequestId, 0u);
}

TEST(NetMessageTest, GarbagePayloadNeverCrashes) {
  Random rng(37);
  int rejected = 0;
  for (int iter = 0; iter < 500; ++iter) {
    const std::string garbage = RandomBytes(&rng, 256);
    RequestMessage request;
    ResponseMessage response;
    if (!DecodeRequest(garbage, &request).ok()) ++rejected;
    if (!DecodeResponse(garbage, &response).ok()) ++rejected;
  }
  // Random bytes must be overwhelmingly rejected (a handful may parse as a
  // trivial empty message — that is fine, they are structurally valid).
  EXPECT_GT(rejected, 900);
}

TEST(NetMessageTest, TruncatedMessageRejected) {
  RequestMessage msg;
  msg.request_id = 42;
  OpRequest op;
  op.type = OpType::kRmwPut;
  op.store_id = 3;
  op.key = "some-key";
  op.value = "some-value";
  op.window = Window(100, 200);
  msg.ops.push_back(op);

  std::string payload;
  EncodeRequest(msg, &payload);
  for (size_t cut = 1; cut < payload.size(); ++cut) {
    RequestMessage decoded;
    EXPECT_FALSE(DecodeRequest(Slice(payload.data(), cut), &decoded).ok())
        << "cut=" << cut;
  }
}

TEST(NetMessageTest, TrailingBytesRejected) {
  RequestMessage msg;
  msg.request_id = 1;
  std::string payload;
  EncodeRequest(msg, &payload);
  payload.push_back('\0');
  RequestMessage decoded;
  EXPECT_FALSE(DecodeRequest(payload, &decoded).ok());
}

StoresMeta RandomStoresMeta(Random* rng) {
  StoresMeta meta;
  meta.num_shards = static_cast<int>(1 + rng->Uniform(8));
  const uint64_t n = rng->Uniform(5);
  for (uint64_t i = 0; i < n; ++i) {
    StoreMetaEntry entry;
    entry.id = i;  // the codec enforces dense ids
    entry.ns = "w0.op" + std::to_string(i) + ".h" + std::to_string(rng->Uniform(4));
    entry.spec.name = "op" + std::to_string(rng->Uniform(100));
    entry.spec.window_kind = static_cast<WindowKind>(rng->Uniform(6));
    entry.spec.incremental = rng->Bernoulli(0.5);
    entry.spec.window_size_ms = rng->Range(0, 100'000);
    entry.spec.session_gap_ms = rng->Range(0, 10'000);
    meta.stores.push_back(std::move(entry));
  }
  return meta;
}

TEST(StoresMetaTest, RoundTripProperty) {
  Random rng(41);
  for (int iter = 0; iter < 100; ++iter) {
    const StoresMeta meta = RandomStoresMeta(&rng);
    const std::string blob = EncodeStoresMeta(meta);
    StoresMeta decoded;
    ASSERT_TRUE(DecodeStoresMeta(blob, &decoded).ok());
    ASSERT_EQ(decoded.num_shards, meta.num_shards);
    ASSERT_EQ(decoded.stores.size(), meta.stores.size());
    for (size_t i = 0; i < meta.stores.size(); ++i) {
      EXPECT_EQ(decoded.stores[i].id, meta.stores[i].id);
      EXPECT_EQ(decoded.stores[i].ns, meta.stores[i].ns);
      EXPECT_EQ(decoded.stores[i].spec.name, meta.stores[i].spec.name);
      EXPECT_EQ(decoded.stores[i].spec.window_kind, meta.stores[i].spec.window_kind);
    }
  }
}

// ----- S3: exhaustive truncation / bit-flip sweeps over a valid corpus -----
//
// Every decoder entry point must treat a damaged input as data, not trust:
// the outcome is a clean Status (or "need more bytes" at the frame layer),
// never a crash, an unbounded allocation, or a silent success that yields
// different bytes than were sent.

// A corpus of valid encoded payloads spanning every message kind.
std::vector<std::string> BuildValidCorpus(Random* rng) {
  std::vector<std::string> corpus;
  for (int i = 0; i < 8; ++i) {
    RequestMessage req;
    req.request_id = rng->Next();
    req.deadline_ms = static_cast<uint32_t>(rng->Uniform(60'000));
    // Half the request corpus carries the trace-context extension block, so
    // the truncation/bit-flip sweeps exercise the trailing-block parse too.
    if (i % 2 == 1) {
      req.trace_id = rng->Next() | 1;
      req.span_id = rng->Next();
      req.trace_flags = 1;
    }
    for (uint64_t k = 0, n = 1 + rng->Uniform(5); k < n; ++k) {
      req.ops.push_back(RandomOpRequest(rng));
    }
    std::string payload;
    EncodeRequest(req, &payload);
    corpus.push_back(std::move(payload));
  }
  for (int i = 0; i < 4; ++i) {
    ResponseMessage resp;
    resp.request_id = rng->Next();
    OpResult r;
    r.type = OpType::kRmwGet;
    r.accumulator = RandomBytes(rng, 64);
    resp.results.push_back(r);
    OpResult err;
    err.type = OpType::kAppendAligned;
    err.status = Status::TimedOut("deadline expired before execution");
    resp.results.push_back(err);
    OpResult stats;
    stats.type = OpType::kStats;
    stats.stats_json = "{\"server\":{\"requests\":" + std::to_string(i) + "}}";
    resp.results.push_back(stats);
    std::string payload;
    EncodeResponse(resp, &payload);
    corpus.push_back(std::move(payload));
  }
  return corpus;
}

// Decodes `payload` through every message decoder; the only requirement is
// that each terminates with a Status (damage below the frame CRC may still
// parse — the CRC, not the body codec, owns integrity).
void DecodeAllWays(const Slice& payload, int* rejections) {
  RequestMessage req;
  if (!DecodeRequest(payload, &req).ok()) ++*rejections;
  ResponseMessage resp;
  if (!DecodeResponse(payload, &resp).ok()) ++*rejections;
  StoresMeta meta;
  if (!DecodeStoresMeta(payload, &meta).ok()) ++*rejections;
}

TEST(NetFuzzTest, EveryTruncationOfEveryCorpusPayloadIsClean) {
  Random rng(53);
  for (const std::string& payload : BuildValidCorpus(&rng)) {
    // Message layer: every strict prefix of a valid body must be rejected
    // (the codec length-prefixes everything and rejects trailing bytes, so a
    // prefix can never masquerade as a complete message).
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      int rejections = 0;
      DecodeAllWays(Slice(payload.data(), cut), &rejections);
      // At most one decoder may accept (a degenerate empty message).
      EXPECT_GE(rejections, 2) << "cut=" << cut;
    }
    // Frame layer: every strict prefix of the framed payload reports
    // "incomplete" without consuming bytes or allocating the full frame.
    std::string wire;
    AppendFrame(&wire, payload);
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      Slice input(wire.data(), cut);
      Slice decoded;
      bool complete = true;
      ASSERT_TRUE(TryDecodeFrame(&input, &decoded, &complete).ok()) << "cut=" << cut;
      EXPECT_FALSE(complete) << "cut=" << cut;
    }
  }
}

TEST(NetFuzzTest, EveryBitFlipOfFramedCorpusIsCaughtOrIncomplete) {
  Random rng(59);
  int caught = 0;
  for (const std::string& payload : BuildValidCorpus(&rng)) {
    std::string wire;
    AppendFrame(&wire, payload);
    // Exhaustive over bytes, seeded-random over the bit within each byte —
    // covers header (length + checksum) and every payload position.
    for (size_t pos = 0; pos < wire.size(); ++pos) {
      std::string damaged = wire;
      damaged[pos] = static_cast<char>(damaged[pos] ^ (1u << rng.Uniform(8)));
      Slice input(damaged);
      Slice decoded;
      bool complete = false;
      const Status s = TryDecodeFrame(&input, &decoded, &complete);
      if (s.ok() && complete) {
        // "Complete" after a flip is only legal if the decode equals the
        // original payload byte-for-byte — anything else is a silent success.
        ASSERT_EQ(decoded.ToString(), payload) << "pos=" << pos;
      } else if (!s.ok()) {
        EXPECT_TRUE(s.IsCorruption() || s.code() == StatusCode::kInvalidArgument)
            << s.ToString();
        ++caught;
      }
      // s.ok() && !complete: the flip grew the length prefix — the reader
      // would wait for bytes that never arrive and time out. Clean too.
    }
  }
  EXPECT_GT(caught, 0);
}

TEST(NetFuzzTest, BitFlippedMessageBodiesNeverCrash) {
  Random rng(61);
  for (const std::string& payload : BuildValidCorpus(&rng)) {
    if (payload.empty()) continue;
    for (int iter = 0; iter < 256; ++iter) {
      std::string damaged = payload;
      // 1–4 random bit flips per iteration.
      for (uint64_t f = 0, n = 1 + rng.Uniform(4); f < n; ++f) {
        const size_t pos = rng.Uniform(damaged.size());
        damaged[pos] = static_cast<char>(damaged[pos] ^ (1u << rng.Uniform(8)));
      }
      int rejections = 0;
      DecodeAllWays(damaged, &rejections);  // must terminate, never crash/OOM
    }
  }
}

TEST(NetFuzzTest, StoresMetaCatchesEverySingleBitFlip) {
  Random rng(67);
  const StoresMeta meta = RandomStoresMeta(&rng);
  const std::string blob = EncodeStoresMeta(meta);
  // stores.meta carries its own trailing checksum, so unlike the message
  // codecs every single-bit flip must be rejected outright.
  for (size_t pos = 0; pos < blob.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = blob;
      damaged[pos] = static_cast<char>(damaged[pos] ^ (1u << bit));
      StoresMeta decoded;
      EXPECT_FALSE(DecodeStoresMeta(damaged, &decoded).ok())
          << "pos=" << pos << " bit=" << bit;
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace flowkv
