// ETT-driven prefetch subsystem (src/net/prefetch.h, docs/NETWORK.md): unit
// tests for the count-based ReadAheadCache and the per-shard
// ShardPrefetchScheduler, plus end-to-end coverage of the push path — an
// AsyncClient against a loopback flowkv_server must serve a closed window's
// read from pushed client memory (deterministically, thanks to the
// push-before-ack wire ordering), degrade silently against legacy or
// push-disabled servers, and every NEXMark query through the prefetch-enabled
// remote backend must match the embedded reference exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/backends/remote_backend.h"
#include "src/common/env.h"
#include "src/net/async_client.h"
#include "src/net/client.h"
#include "src/net/prefetch.h"
#include "src/net/server.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"
#include "src/spe/job_runner.h"

namespace flowkv {
namespace {

using net::FiredPush;
using net::PrefetchShardMetrics;
using net::ReadAheadCache;
using net::ShardPrefetchScheduler;

// ----- ReadAheadCache -----

TEST(ReadAheadCacheTest, HitRequiresExactCountMatch) {
  ReadAheadCache cache(1u << 20);
  const Window w(0, 1000);
  cache.OnLocalAppend(1, w);
  cache.OnLocalAppend(1, w);

  std::vector<WindowChunkEntry> pushed;
  pushed.push_back(WindowChunkEntry{"k", {"v0", "v1"}});
  cache.OnPush(1, w, 1, std::move(pushed));

  std::vector<WindowChunkEntry> chunk;
  ASSERT_TRUE(cache.TryServe(1, w, &chunk));
  ASSERT_EQ(chunk.size(), 1u);
  EXPECT_EQ(chunk[0].key, "k");
  EXPECT_EQ(chunk[0].values, (std::vector<std::string>{"v0", "v1"}));
  EXPECT_EQ(cache.counters().hits, 1);
  EXPECT_EQ(cache.bytes(), 0u);  // entry consumed

  // The entry and the count are gone: a second read of the same window can
  // only go remote (and is not even a miss — nothing local is outstanding).
  EXPECT_FALSE(cache.TryServe(1, w, &chunk));
  EXPECT_EQ(cache.counters().misses, 0);
}

TEST(ReadAheadCacheTest, CountMismatchIsSafeMiss) {
  ReadAheadCache cache(1u << 20);
  const Window w(0, 1000);
  cache.OnLocalAppend(7, w);
  cache.OnLocalAppend(7, w);

  // The push lost a value (backpressure shed, partial fire): 1 != 2.
  std::vector<WindowChunkEntry> pushed;
  pushed.push_back(WindowChunkEntry{"k", {"v0"}});
  cache.OnPush(7, w, 1, std::move(pushed));

  std::vector<WindowChunkEntry> chunk;
  EXPECT_FALSE(cache.TryServe(7, w, &chunk));
  EXPECT_EQ(cache.counters().misses, 1);
  EXPECT_EQ(cache.counters().hits, 0);

  // A late local append after a count-matching push breaks the equality in
  // the other direction — still a miss, never a short read.
  const Window w2(1000, 2000);
  cache.OnLocalAppend(7, w2);
  std::vector<WindowChunkEntry> pushed2;
  pushed2.push_back(WindowChunkEntry{"k", {"v0"}});
  cache.OnPush(7, w2, 2, std::move(pushed2));
  cache.OnLocalAppend(7, w2);
  EXPECT_FALSE(cache.TryServe(7, w2, &chunk));
  EXPECT_EQ(cache.counters().misses, 2);
}

TEST(ReadAheadCacheTest, PushWithoutLocalAppendsIsStale) {
  ReadAheadCache cache(1u << 20);
  std::vector<WindowChunkEntry> pushed;
  pushed.push_back(WindowChunkEntry{"k", {"v"}});
  cache.OnPush(3, Window(0, 1000), 1, std::move(pushed));
  EXPECT_EQ(cache.counters().stale, 1);
  EXPECT_EQ(cache.counters().pushes, 0);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ReadAheadCacheTest, ShardChunksAccumulatePerWindow) {
  // One push per server shard for the same window; the entry must
  // accumulate values until the total equals the local count.
  ReadAheadCache cache(1u << 20);
  const Window w(0, 1000);
  for (int i = 0; i < 4; ++i) {
    cache.OnLocalAppend(1, w);
  }
  std::vector<WindowChunkEntry> shard0;
  shard0.push_back(WindowChunkEntry{"a", {"v0", "v1"}});
  cache.OnPush(1, w, 1, std::move(shard0));

  std::vector<WindowChunkEntry> probe;
  EXPECT_FALSE(cache.TryServe(1, w, &probe));  // 2 of 4 so far

  std::vector<WindowChunkEntry> shard1;
  shard1.push_back(WindowChunkEntry{"b", {"v2", "v3"}});
  cache.OnPush(1, w, 1, std::move(shard1));

  std::vector<WindowChunkEntry> chunk;
  ASSERT_TRUE(cache.TryServe(1, w, &chunk));
  EXPECT_EQ(chunk.size(), 2u);
  EXPECT_EQ(cache.counters().pushes, 2);
}

TEST(ReadAheadCacheTest, RemoteReadDoneDiscardsEntryAsWaste) {
  ReadAheadCache cache(1u << 20);
  const Window w(0, 1000);
  cache.OnLocalAppend(1, w);
  std::vector<WindowChunkEntry> pushed;
  pushed.push_back(WindowChunkEntry{"k", {"v0", "v1"}});  // 2 != 1: unservable
  cache.OnPush(1, w, 1, std::move(pushed));

  cache.OnRemoteReadDone(1, w);
  EXPECT_EQ(cache.counters().waste, 2);
  EXPECT_EQ(cache.bytes(), 0u);
  // The local count is forgotten too: the window's life is over.
  std::vector<WindowChunkEntry> chunk;
  EXPECT_FALSE(cache.TryServe(1, w, &chunk));
  EXPECT_EQ(cache.counters().misses, 0);
}

TEST(ReadAheadCacheTest, ClearDropsEntriesButKeepsLocalCounts) {
  ReadAheadCache cache(1u << 20);
  const Window w(0, 1000);
  cache.OnLocalAppend(1, w);
  std::vector<WindowChunkEntry> pushed;
  pushed.push_back(WindowChunkEntry{"k", {"v"}});
  cache.OnPush(1, w, 1, std::move(pushed));

  cache.Clear();  // reconnect/failover
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.counters().waste, 1);

  // A re-push from the new peer against the surviving local count can still
  // hit — the count describes client history, not the dead connection.
  std::vector<WindowChunkEntry> repushed;
  repushed.push_back(WindowChunkEntry{"k", {"v"}});
  cache.OnPush(1, w, 1, std::move(repushed));
  std::vector<WindowChunkEntry> chunk;
  EXPECT_TRUE(cache.TryServe(1, w, &chunk));
}

TEST(ReadAheadCacheTest, CapacityBoundEvictsLeastRecentlyPushed) {
  ReadAheadCache cache(200);  // tiny: two ~100-byte entries exceed it
  const Window w0(0, 1000);
  const Window w1(1000, 2000);
  cache.OnLocalAppend(1, w0);
  cache.OnLocalAppend(1, w1);

  std::vector<WindowChunkEntry> big0;
  big0.push_back(WindowChunkEntry{"key0", {std::string(100, 'a')}});
  cache.OnPush(1, w0, 1, std::move(big0));
  std::vector<WindowChunkEntry> big1;
  big1.push_back(WindowChunkEntry{"key1", {std::string(100, 'b')}});
  cache.OnPush(1, w1, 2, std::move(big1));

  EXPECT_EQ(cache.counters().evictions, 1);
  EXPECT_LE(cache.bytes(), 200u);
  // The older entry (w0) was the victim; w1 still hits.
  std::vector<WindowChunkEntry> chunk;
  EXPECT_FALSE(cache.TryServe(1, w0, &chunk));
  EXPECT_TRUE(cache.TryServe(1, w1, &chunk));
}

// ----- ShardPrefetchScheduler -----

TEST(ShardPrefetchSchedulerTest, NoSubscribersMeansNoShadowState) {
  ShardPrefetchScheduler sched(1u << 20, PrefetchShardMetrics{});
  sched.OnAppend(1, "k", "v", Window(0, 1000));
  sched.OnAppend(1, "k", "v", Window(1000, 2000));
  EXPECT_EQ(sched.shadow_bytes(), 0u);
  EXPECT_FALSE(sched.has_fired());
}

TEST(ShardPrefetchSchedulerTest, FiresWhenEventTimePassesWindowEnd) {
  ShardPrefetchScheduler sched(1u << 20, PrefetchShardMetrics{});
  sched.Register(42, 1);
  ASSERT_TRUE(sched.HasSubscribers(1));

  sched.OnAppend(1, "a", "v0", Window(0, 1000));
  sched.OnAppend(1, "a", "v1", Window(0, 1000));
  sched.OnAppend(1, "b", "v2", Window(0, 1000));
  EXPECT_FALSE(sched.has_fired()) << "event time has not reached 1000 yet";
  EXPECT_GT(sched.shadow_bytes(), 0u);

  // A tuple in [1000, 2000) proves event time reached 1000: [0, 1000) can no
  // longer grow for an in-order stream, so it fires.
  sched.OnAppend(1, "a", "w1", Window(1000, 2000));
  ASSERT_TRUE(sched.has_fired());

  std::vector<FiredPush> fired;
  sched.TakeFired(&fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].store_id, 1u);
  EXPECT_EQ(fired[0].window, Window(0, 1000));
  EXPECT_EQ(fired[0].conn_ids, (std::vector<uint64_t>{42}));
  ASSERT_EQ(fired[0].chunk.size(), 2u);  // key-grouped: "a" (2 values), "b" (1)
  int64_t values = 0;
  for (const WindowChunkEntry& e : fired[0].chunk) {
    values += static_cast<int64_t>(e.values.size());
  }
  EXPECT_EQ(values, 3);
  EXPECT_FALSE(sched.has_fired());
}

TEST(ShardPrefetchSchedulerTest, FiredQueueIsEarliestDeadlineFirst) {
  ShardPrefetchScheduler sched(1u << 20, PrefetchShardMetrics{});
  sched.Register(1, 9);
  // Two overlapping shadows (merge/session shapes) pending at once; a far
  // append closes both in one step.
  sched.OnAppend(9, "k", "v", Window(0, 2000));
  sched.OnAppend(9, "k", "v", Window(0, 1000));
  sched.OnAppend(9, "k", "v", Window(2000, 3000));
  std::vector<FiredPush> fired;
  sched.TakeFired(&fired);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].window, Window(0, 1000)) << "EDF: earliest end first";
  EXPECT_EQ(fired[1].window, Window(0, 2000));
  EXPECT_LT(fired[0].push_seq, fired[1].push_seq);
}

TEST(ShardPrefetchSchedulerTest, LateAppendIntoFiredWindowInvalidates) {
  ShardPrefetchScheduler sched(1u << 20, PrefetchShardMetrics{});
  sched.Register(1, 9);
  sched.OnAppend(9, "k", "v", Window(0, 1000));
  sched.OnAppend(9, "k", "v", Window(1000, 2000));  // fires [0, 1000)
  std::vector<FiredPush> fired;
  sched.TakeFired(&fired);
  ASSERT_EQ(fired.size(), 1u);

  // A straggler lands in the already-fired window: no new shadow may grow
  // there (a second push could never match the client's count anyway).
  sched.OnAppend(9, "late", "v", Window(0, 1000));
  EXPECT_FALSE(sched.has_fired());
  sched.OnAppend(9, "late", "v", Window(0, 1000));
  EXPECT_FALSE(sched.has_fired());
}

TEST(ShardPrefetchSchedulerTest, ConsumedWindowDropsShadowAsWaste) {
  ShardPrefetchScheduler sched(1u << 20, PrefetchShardMetrics{});
  sched.Register(1, 9);
  sched.OnAppend(9, "k", "v", Window(0, 1000));
  ASSERT_GT(sched.shadow_bytes(), 0u);
  // The client reads (or drops) the window before it ever fired.
  sched.OnWindowConsumed(9, Window(0, 1000));
  EXPECT_EQ(sched.shadow_bytes(), 0u);
  // Event time moving on afterwards must not fire the consumed window.
  sched.OnAppend(9, "k", "v", Window(1000, 2000));
  std::vector<FiredPush> fired;
  sched.TakeFired(&fired);
  EXPECT_TRUE(fired.empty());
}

TEST(ShardPrefetchSchedulerTest, BudgetOverflowAbandonsWindow) {
  ShardPrefetchScheduler sched(100, PrefetchShardMetrics{});  // tiny budget
  sched.Register(1, 9);
  sched.OnAppend(9, "k", std::string(40, 'x'), Window(0, 1000));
  sched.OnAppend(9, "k", std::string(40, 'x'), Window(0, 1000));  // over 100
  EXPECT_EQ(sched.shadow_bytes(), 0u) << "over-budget window abandoned whole";
  // Closing the window must NOT push the partial shadow.
  sched.OnAppend(9, "k", "v", Window(1000, 2000));
  std::vector<FiredPush> fired;
  sched.TakeFired(&fired);
  EXPECT_TRUE(fired.empty());
  // Consuming the window clears the abandonment; the next incarnation of the
  // window (after a merge or re-open) shadows normally again.
  sched.OnWindowConsumed(9, Window(0, 1000));
}

TEST(ShardPrefetchSchedulerTest, UnregisterLastSubscriberDropsShadows) {
  ShardPrefetchScheduler sched(1u << 20, PrefetchShardMetrics{});
  sched.Register(1, 9);
  sched.Register(2, 9);
  sched.OnAppend(9, "k", "v", Window(0, 1000));
  sched.Unregister(1);
  EXPECT_TRUE(sched.HasSubscribers(9));
  EXPECT_GT(sched.shadow_bytes(), 0u);
  sched.Unregister(2);
  EXPECT_FALSE(sched.HasSubscribers(9));
  EXPECT_EQ(sched.shadow_bytes(), 0u);
}

// ----- end-to-end: AsyncClient against a loopback server -----

OperatorStateSpec AarSpec(const std::string& name) {
  OperatorStateSpec spec;
  spec.name = name;
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = false;
  spec.window_size_ms = 1000;
  return spec;
}

// Drains a window through the chunked read protocol into key → values.
Status ReadWindow(net::StoreClient* client, uint64_t handle, const Window& w,
                  std::map<std::string, std::vector<std::string>>* out) {
  out->clear();
  bool done = false;
  while (!done) {
    std::vector<WindowChunkEntry> chunk;
    FLOWKV_RETURN_IF_ERROR(client->GetWindowChunk(handle, w, &chunk, &done));
    for (WindowChunkEntry& e : chunk) {
      auto& values = (*out)[e.key];
      for (std::string& v : e.values) {
        values.push_back(std::move(v));
      }
    }
  }
  return Status::Ok();
}

class NetPrefetchE2ETest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("net_prefetch"); }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
    RemoveDirRecursively(dir_).IgnoreError();
  }

  void StartServer(bool server_push, bool emulate_legacy = false) {
    net::ServerOptions options;
    options.num_shards = 2;
    options.data_dir = JoinPath(dir_, "server_data");
    options.checkpoint_dir = JoinPath(dir_, "server_ckpt");
    options.enable_prefetch_push = server_push;
    options.emulate_legacy_proto = emulate_legacy;
    ASSERT_TRUE(net::Server::Start(options, &server_).ok());
  }

  std::unique_ptr<net::AsyncClient> AsyncTo(int port) {
    net::ClientOptions copts;
    copts.port = port;
    copts.enable_prefetch_push = true;
    copts.jitter_seed = 17;
    std::unique_ptr<net::AsyncClient> client;
    EXPECT_TRUE(net::AsyncClient::Connect(copts, &client).ok());
    return client;
  }

  std::string dir_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(NetPrefetchE2ETest, ClosedWindowIsServedFromPushedCache) {
  StartServer(/*server_push=*/true);
  std::unique_ptr<net::AsyncClient> client = AsyncTo(server_->port());
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->push_negotiated());

  uint64_t h = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("t.prefetch.h0", AarSpec("prefetch-op"), &h, &pattern).ok());
  ASSERT_EQ(pattern, StorePattern::kAppendAligned);

  const Window w0(0, 1000);
  const Window w1(1000, 2000);
  std::map<std::string, std::vector<std::string>> expected;
  for (int i = 0; i < 8; ++i) {
    const std::string key = "k" + std::to_string(i % 4);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(client->AppendAligned(h, key, value, w0).ok());
    expected[key].push_back(value);
  }
  // The same keys in the next window advance every involved shard's
  // event-time high-water mark past w0.end, so each shard fires its w0
  // shadow — and queues the push BEFORE acking these appends.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->AppendAligned(h, "k" + std::to_string(i), "next", w1).ok());
  }
  ASSERT_TRUE(client->Flush().ok());

  // Flush acked ⇒ the reader has banked the pushes: the hit is deterministic.
  std::map<std::string, std::vector<std::string>> got;
  ASSERT_TRUE(ReadWindow(client.get(), h, w0, &got).ok());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(client->cache_counters().hits, 1);
  EXPECT_EQ(client->cache_counters().misses, 0);

  // The cache hit consumed the server-side copy with kDropWindow: after the
  // drop flushes, a second (blocking) client must find the window empty.
  ASSERT_TRUE(client->Flush().ok());
  net::ClientOptions bopts;
  bopts.port = server_->port();
  std::unique_ptr<net::Client> blocking;
  ASSERT_TRUE(net::Client::Connect(bopts, &blocking).ok());
  uint64_t h2 = 0;
  ASSERT_TRUE(blocking->OpenStore("t.prefetch.h0", AarSpec("prefetch-op"), &h2, nullptr).ok());
  std::map<std::string, std::vector<std::string>> after_drop;
  ASSERT_TRUE(ReadWindow(blocking.get(), h2, w0, &after_drop).ok());
  EXPECT_TRUE(after_drop.empty()) << "kDropWindow did not consume server state";
}

TEST_F(NetPrefetchE2ETest, CrossClientPushIsStaleWithoutLocalHistory) {
  StartServer(/*server_push=*/true);
  std::unique_ptr<net::AsyncClient> subscriber = AsyncTo(server_->port());
  ASSERT_NE(subscriber, nullptr);
  uint64_t h = 0;
  ASSERT_TRUE(subscriber->OpenStore("t.shared.h0", AarSpec("shared-op"), &h, nullptr).ok());

  // Another client writes the store; the subscriber gets the push but never
  // appended locally — the count check must park it as stale, not serve it.
  net::ClientOptions wopts;
  wopts.port = server_->port();
  std::unique_ptr<net::Client> writer;
  ASSERT_TRUE(net::Client::Connect(wopts, &writer).ok());
  uint64_t wh = 0;
  ASSERT_TRUE(writer->OpenStore("t.shared.h0", AarSpec("shared-op"), &wh, nullptr).ok());
  ASSERT_TRUE(writer->AppendAligned(wh, "k", "v", Window(0, 1000)).ok());
  ASSERT_TRUE(writer->AppendAligned(wh, "k", "v", Window(1000, 2000)).ok());
  ASSERT_TRUE(writer->Flush().ok());

  // The push rides the subscriber's connection asynchronously; poll briefly.
  for (int i = 0; i < 500 && subscriber->cache_counters().stale == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(subscriber->cache_counters().stale, 1);
  EXPECT_EQ(subscriber->cache_counters().hits, 0);
  EXPECT_EQ(subscriber->cache_bytes(), 0u);

  // The subscriber still reads the window correctly — remotely.
  std::map<std::string, std::vector<std::string>> got;
  ASSERT_TRUE(ReadWindow(subscriber.get(), h, Window(0, 1000), &got).ok());
  ASSERT_EQ(got.count("k"), 1u);
  EXPECT_EQ(got["k"].size(), 1u);
}

TEST_F(NetPrefetchE2ETest, LegacyServerDegradesToRemoteReads) {
  StartServer(/*server_push=*/true, /*emulate_legacy=*/true);
  std::unique_ptr<net::AsyncClient> client = AsyncTo(server_->port());
  ASSERT_NE(client, nullptr);
  EXPECT_FALSE(client->push_negotiated())
      << "legacy server must fail the capability probe";

  uint64_t h = 0;
  ASSERT_TRUE(client->OpenStore("t.legacy.h0", AarSpec("legacy-op"), &h, nullptr).ok());
  ASSERT_TRUE(client->AppendAligned(h, "k", "v0", Window(0, 1000)).ok());
  ASSERT_TRUE(client->AppendAligned(h, "k", "v1", Window(0, 1000)).ok());
  ASSERT_TRUE(client->Flush().ok());

  std::map<std::string, std::vector<std::string>> got;
  ASSERT_TRUE(ReadWindow(client.get(), h, Window(0, 1000), &got).ok());
  ASSERT_EQ(got.count("k"), 1u);
  EXPECT_EQ(got["k"], (std::vector<std::string>{"v0", "v1"}));
  EXPECT_EQ(client->cache_counters().hits, 0) << "no pushes can exist";
}

TEST_F(NetPrefetchE2ETest, ServerWithPushDisabledDegrades) {
  StartServer(/*server_push=*/false);
  std::unique_ptr<net::AsyncClient> client = AsyncTo(server_->port());
  ASSERT_NE(client, nullptr);
  EXPECT_FALSE(client->push_negotiated())
      << "probe must omit caps.prefetch_push when the server opts out";

  uint64_t h = 0;
  ASSERT_TRUE(client->OpenStore("t.nopush.h0", AarSpec("nopush-op"), &h, nullptr).ok());
  ASSERT_TRUE(client->AppendAligned(h, "k", "v", Window(0, 1000)).ok());
  ASSERT_TRUE(client->Flush().ok());
  std::map<std::string, std::vector<std::string>> got;
  ASSERT_TRUE(ReadWindow(client.get(), h, Window(0, 1000), &got).ok());
  EXPECT_EQ(got["k"], (std::vector<std::string>{"v"}));
  EXPECT_EQ(client->cache_counters().hits, 0);
}

TEST_F(NetPrefetchE2ETest, StatsExposePrefetchCounters) {
  StartServer(/*server_push=*/true);
  std::unique_ptr<net::AsyncClient> client = AsyncTo(server_->port());
  ASSERT_NE(client, nullptr);
  uint64_t h = 0;
  ASSERT_TRUE(client->OpenStore("t.stats.h0", AarSpec("stats-op"), &h, nullptr).ok());
  ASSERT_TRUE(client->AppendAligned(h, "k", "v", Window(0, 1000)).ok());
  ASSERT_TRUE(client->AppendAligned(h, "k", "v", Window(1000, 2000)).ok());
  ASSERT_TRUE(client->Flush().ok());

  std::string json;
  ASSERT_TRUE(client->Stats(&json).ok());
  EXPECT_NE(json.find("\"prefetch\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"fired\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pushes_sent\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"shadow_bytes\""), std::string::npos) << json;
}

// ----- end-to-end: NEXMark equivalence with prefetch enabled -----

using Results = std::vector<std::tuple<int64_t, std::string, std::string>>;

class ResultCollector : public Collector {
 public:
  Status Emit(const Event& event) override {
    results.emplace_back(event.timestamp, event.key, event.value);
    return Status::Ok();
  }
  Results results;
};

struct RunOutcome {
  Status status;
  Results results;
};

RunOutcome RunQueryOn(const std::string& query, StateBackendFactory* factory,
                      const NexmarkConfig& nexmark, const QueryParams& params) {
  RunOutcome outcome;
  auto collector = std::make_shared<ResultCollector>();
  Pipeline pipeline;
  outcome.status = BuildNexmarkQuery(query, params, &pipeline);
  if (!outcome.status.ok()) {
    return outcome;
  }
  outcome.status = pipeline.Open(factory, 0, collector.get());
  if (!outcome.status.ok()) {
    return outcome;
  }
  NexmarkSource source(nexmark, 0);
  Event event;
  int64_t max_ts = 0;
  int since_watermark = 0;
  while (source.Next(&event)) {
    outcome.status = pipeline.Process(event);
    if (!outcome.status.ok()) {
      return outcome;
    }
    max_ts = event.timestamp;
    if (++since_watermark >= 128) {
      since_watermark = 0;
      outcome.status = pipeline.AdvanceWatermark(max_ts);
      if (!outcome.status.ok()) {
        return outcome;
      }
    }
  }
  outcome.status = pipeline.Finish();
  outcome.results = collector->results;
  std::sort(outcome.results.begin(), outcome.results.end());
  return outcome;
}

class PrefetchEquivalenceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("net_prefetch_e2e");
    net::ServerOptions options;
    options.num_shards = 2;
    options.data_dir = JoinPath(dir_, "server_data");
    options.checkpoint_dir = JoinPath(dir_, "server_ckpt");
    ASSERT_TRUE(net::Server::Start(options, &server_).ok());
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
    RemoveDirRecursively(dir_).IgnoreError();
  }

  std::string dir_;
  std::unique_ptr<net::Server> server_;
};

TEST_P(PrefetchEquivalenceTest, RemoteWithPrefetchMatchesEmbedded) {
  const std::string query = GetParam();

  NexmarkConfig nexmark;
  nexmark.events_per_worker = 8'000;
  nexmark.num_people = 150;
  nexmark.num_auctions = 150;
  nexmark.inter_event_ms = 10;

  QueryParams params;
  params.window_size_ms = 20'000;
  params.session_gap_ms = 2'000;

  FlowKvBackendFactory embedded(JoinPath(dir_, "embedded"), FlowKvOptions{});
  RunOutcome reference = RunQueryOn(query, &embedded, nexmark, params);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_FALSE(reference.results.empty()) << "query produced no output";

  net::ClientOptions copts;
  copts.port = server_->port();
  copts.request_timeout_ms = 60'000;
  copts.enable_prefetch_push = true;  // routes through AsyncClient + cache
  RemoteBackendFactory remote(copts);
  RunOutcome remote_run = RunQueryOn(query, &remote, nexmark, params);
  ASSERT_TRUE(remote_run.status.ok()) << remote_run.status.ToString();
  EXPECT_EQ(remote_run.results.size(), reference.results.size());
  EXPECT_EQ(remote_run.results, reference.results)
      << "prefetch-enabled remote state diverges from embedded FlowKV";
}

INSTANTIATE_TEST_SUITE_P(AllQueries, PrefetchEquivalenceTest,
                         ::testing::ValuesIn(NexmarkQueryNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace flowkv
