// Property-style sweeps (TEST_P) over FlowKV's configuration space and
// randomized workloads, checking store invariants that must hold for every
// parameter combination:
//  - no lost or duplicated tuples (AUR under random session streams),
//  - fetch-and-remove semantics,
//  - space amplification bounded near MSA after compactions,
//  - session ETT is a lower bound (prefetched session state is never wrong
//    unless a tuple really arrived),
//  - window-operator results over FlowKV equal the in-memory reference for
//    randomized (non-NEXMark) event streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/backends/memory_backend.h"
#include "src/common/env.h"
#include "src/common/random.h"
#include "src/flowkv/aur_store.h"
#include "src/hashkv/hashkv_store.h"
#include "src/lsm/lsm_store.h"
#include "src/lsm/merge.h"
#include "src/nexmark/aggregates.h"
#include "src/spe/pipeline.h"
#include "src/spe/window_operator.h"

namespace flowkv {
namespace {

// ---------------------------------------------------------------------------
// AUR invariants across (write_buffer, read_batch_ratio, msa).

struct AurParams {
  uint64_t write_buffer_bytes;
  double read_batch_ratio;
  double msa;
};

class AurPropertyTest : public ::testing::TestWithParam<AurParams> {
 protected:
  void SetUp() override { dir_ = MakeTempDir("aur_prop"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }
  std::string dir_;
};

TEST_P(AurPropertyTest, NoTupleLostUnderRandomSessionWorkload) {
  const AurParams& p = GetParam();
  FlowKvOptions options;
  options.write_buffer_bytes = p.write_buffer_bytes;
  options.read_batch_ratio = p.read_batch_ratio;
  options.max_space_amplification = p.msa;
  std::unique_ptr<AurStore> store;
  ASSERT_TRUE(
      AurStore::Open(dir_, options, std::make_unique<SessionEttPredictor>(100), &store).ok());

  Random rng(p.write_buffer_bytes + static_cast<uint64_t>(p.read_batch_ratio * 1000));
  std::map<std::string, std::vector<std::string>> live;  // refkey -> values
  int64_t ts = 0;
  int64_t appended = 0, retrieved = 0;
  for (int step = 0; step < 4000; ++step) {
    const std::string key = "k" + std::to_string(rng.Uniform(25));
    const int64_t start = static_cast<int64_t>(rng.Uniform(10)) * 50;
    const Window w(start, start + 50);
    const std::string refkey = key + "|" + std::to_string(start);
    if (rng.Uniform(10) < 7 || live.find(refkey) == live.end()) {
      std::string value = "v" + std::to_string(step);
      ASSERT_TRUE(store->Append(key, value, w, ts++).ok());
      live[refkey].push_back(value);
      ++appended;
    } else {
      std::vector<std::string> values;
      ASSERT_TRUE(store->Get(key, w, &values).ok());
      EXPECT_EQ(values, live[refkey]) << refkey << " step " << step;
      retrieved += static_cast<int64_t>(values.size());
      live.erase(refkey);
      // Fetch-and-remove invariant.
      EXPECT_TRUE(store->Get(key, w, &values).IsNotFound());
    }
  }
  // Drain the rest; nothing may be lost or duplicated.
  for (auto& [refkey, expected] : live) {
    const size_t bar = refkey.find('|');
    const std::string key = refkey.substr(0, bar);
    const int64_t start = std::stoll(refkey.substr(bar + 1));
    std::vector<std::string> values;
    ASSERT_TRUE(store->Get(key, Window(start, start + 50), &values).ok()) << refkey;
    EXPECT_EQ(values, expected) << refkey;
    retrieved += static_cast<int64_t>(values.size());
  }
  EXPECT_EQ(appended, retrieved);
  // Amplification bounded: compaction must have kept the log near MSA.
  EXPECT_LE(store->SpaceAmplification(), p.msa + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AurPropertyTest,
    ::testing::Values(AurParams{1, 0.0, 1.2}, AurParams{1, 0.05, 1.5},
                      AurParams{1, 0.5, 3.0}, AurParams{512, 0.02, 1.5},
                      AurParams{4096, 0.1, 1.1}, AurParams{64 * 1024, 1.0, 2.0}),
    [](const ::testing::TestParamInfo<AurParams>& info) {
      return "wb" + std::to_string(info.param.write_buffer_bytes) + "_rb" +
             std::to_string(static_cast<int>(info.param.read_batch_ratio * 100)) + "_msa" +
             std::to_string(static_cast<int>(info.param.msa * 10));
    });

// ---------------------------------------------------------------------------
// Operator-level equivalence: FlowKV vs memory under randomized streams,
// swept across window kinds and parameters.

struct StreamParams {
  WindowKind kind;
  bool incremental;
  int64_t size_or_gap;
  uint64_t seed;
};

std::shared_ptr<WindowAssigner> MakeAssigner(const StreamParams& p);

class OperatorPropertyTest : public ::testing::TestWithParam<StreamParams> {
 protected:
  void SetUp() override { dir_ = MakeTempDir("op_prop"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }

  std::string dir_;
};

std::shared_ptr<WindowAssigner> MakeAssigner(const StreamParams& p) {
    switch (p.kind) {
      case WindowKind::kTumbling:
        return std::make_shared<TumblingWindowAssigner>(p.size_or_gap);
      case WindowKind::kSliding:
        return std::make_shared<SlidingWindowAssigner>(p.size_or_gap, p.size_or_gap / 2);
      case WindowKind::kSession:
        return std::make_shared<SessionWindowAssigner>(p.size_or_gap);
      case WindowKind::kGlobal:
        return std::make_shared<GlobalWindowAssigner>();
      case WindowKind::kCount:
        return std::make_shared<CountWindowAssigner>(p.size_or_gap);
      default:
        return nullptr;
    }
}

class SortedConcatProcess : public ProcessWindowFunction {
 public:
  Status Process(const Slice& key, const Window& window,
                 const std::vector<std::string>& values, const EmitFn& emit) const override {
    // Order-insensitive digest of the collected values.
    std::vector<std::string> sorted(values);
    std::sort(sorted.begin(), sorted.end());
    std::string joined;
    for (const auto& v : sorted) {
      joined += v;
      joined += "|";
    }
    return emit(std::move(joined));
  }
};

using Results = std::vector<std::tuple<int64_t, std::string, std::string>>;

class ResultCollector : public Collector {
 public:
  Status Emit(const Event& event) override {
    results.emplace_back(event.timestamp, event.key, event.value);
    return Status::Ok();
  }
  Results results;
};

Results RunStream(const StreamParams& p, StateBackendFactory* factory) {
  Pipeline pipeline;
  WindowOperatorConfig config;
  config.name = "op";
  config.assigner = MakeAssigner(p);
  if (p.incremental) {
    config.aggregate = std::make_shared<CountAggregate>();
  } else {
    config.process = std::make_shared<SortedConcatProcess>();
  }
  pipeline.AddOperator(std::make_unique<WindowOperator>(std::move(config)));
  ResultCollector sink;
  Status s = pipeline.Open(factory, 0, &sink);
  EXPECT_TRUE(s.ok()) << s.ToString();

  Random rng(p.seed);
  int64_t ts = 0;
  for (int i = 0; i < 5000; ++i) {
    ts += static_cast<int64_t>(rng.Uniform(40));  // bursts and gaps
    Event event("key" + std::to_string(rng.Uniform(15)), "v" + std::to_string(i), ts);
    s = pipeline.Process(event);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (i % 97 == 0) {
      s = pipeline.AdvanceWatermark(ts);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
  }
  EXPECT_TRUE(pipeline.Finish().ok());
  std::sort(sink.results.begin(), sink.results.end());
  return sink.results;
}

TEST_P(OperatorPropertyTest, FlowKvMatchesMemoryReference) {
  const StreamParams& p = GetParam();
  MemoryBackendFactory memory;
  Results expected = RunStream(p, &memory);
  ASSERT_FALSE(expected.empty());

  FlowKvOptions options;
  options.write_buffer_bytes = 8 * 1024;  // heavy flush/prefetch traffic
  FlowKvBackendFactory flowkv(dir_, options);
  Results actual = RunStream(p, &flowkv);
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OperatorPropertyTest,
    ::testing::Values(StreamParams{WindowKind::kTumbling, true, 500, 1},
                      StreamParams{WindowKind::kTumbling, false, 500, 2},
                      StreamParams{WindowKind::kSliding, true, 600, 3},
                      StreamParams{WindowKind::kSliding, false, 600, 4},
                      StreamParams{WindowKind::kSession, true, 120, 5},
                      StreamParams{WindowKind::kSession, false, 120, 6},
                      StreamParams{WindowKind::kSession, false, 15, 7},  // tiny gap
                      StreamParams{WindowKind::kGlobal, true, 0, 8},
                      StreamParams{WindowKind::kCount, false, 16, 9}),
    [](const ::testing::TestParamInfo<StreamParams>& info) {
      const char* kind = "";
      switch (info.param.kind) {
        case WindowKind::kTumbling: kind = "tumbling"; break;
        case WindowKind::kSliding: kind = "sliding"; break;
        case WindowKind::kSession: kind = "session"; break;
        case WindowKind::kGlobal: kind = "global"; break;
        case WindowKind::kCount: kind = "count"; break;
        default: kind = "custom"; break;
      }
      return std::string(kind) + (info.param.incremental ? "_rmw" : "_append") + "_s" +
             std::to_string(info.param.size_or_gap);
    });

// ---------------------------------------------------------------------------
// Baseline-store property sweeps: the LSM and hash-log stores must match a
// std::map reference under randomized Put/Merge/Delete/Get mixes for every
// buffer/compaction configuration.

struct LsmSweepParams {
  uint64_t write_buffer_bytes;
  int compaction_trigger;
  uint64_t block_bytes;
};

class LsmPropertyTest : public ::testing::TestWithParam<LsmSweepParams> {
 protected:
  void SetUp() override { dir_ = MakeTempDir("lsm_prop"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }
  std::string dir_;
};

TEST_P(LsmPropertyTest, MatchesReferenceUnderRandomOps) {
  const LsmSweepParams& p = GetParam();
  LsmOptions options;
  options.write_buffer_bytes = p.write_buffer_bytes;
  options.compaction_trigger = p.compaction_trigger;
  options.block_bytes = p.block_bytes;
  std::unique_ptr<LsmStore> store;
  ASSERT_TRUE(
      LsmStore::Open(dir_, options, std::make_unique<ListAppendMergeOperator>(), &store).ok());

  std::map<std::string, std::string> reference;  // key -> resolved value
  Random rng(p.write_buffer_bytes + p.compaction_trigger);
  for (int step = 0; step < 4000; ++step) {
    const std::string key = "key" + std::to_string(rng.Uniform(60));
    const uint64_t op = rng.Uniform(10);
    if (op < 4) {  // Put
      std::string value;
      EncodeListElement(&value, "p" + std::to_string(step));
      ASSERT_TRUE(store->Put(key, value).ok());
      reference[key] = value;
    } else if (op < 7) {  // Merge (append)
      std::string element;
      EncodeListElement(&element, "m" + std::to_string(step));
      ASSERT_TRUE(store->Merge(key, element).ok());
      reference[key] += element;
    } else if (op < 8) {  // Delete
      ASSERT_TRUE(store->Delete(key).ok());
      reference.erase(key);
    } else {  // Get
      std::string value;
      Status s = store->Get(key, &value);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_TRUE(s.IsNotFound()) << key << " step " << step;
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        EXPECT_EQ(value, it->second) << key << " step " << step;
      }
    }
  }
  // Full-scan equivalence (ordering + merged contents).
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE(store->Scan("", "", [&](const Slice& k, const Slice& v) {
    scanned[k.ToString()] = v.ToString();
  }).ok());
  EXPECT_EQ(scanned, reference);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LsmPropertyTest,
                         ::testing::Values(LsmSweepParams{512, 2, 256},
                                           LsmSweepParams{1024, 4, 1024},
                                           LsmSweepParams{4096, 3, 4096},
                                           LsmSweepParams{64 * 1024, 8, 16384},
                                           LsmSweepParams{1 << 20, 2, 512}),
                         [](const ::testing::TestParamInfo<LsmSweepParams>& info) {
                           return "wb" + std::to_string(info.param.write_buffer_bytes) +
                                  "_ct" + std::to_string(info.param.compaction_trigger) +
                                  "_bb" + std::to_string(info.param.block_bytes);
                         });

struct HashKvSweepParams {
  uint64_t memory_bytes;
  uint64_t page_bytes;
  double msa;
};

class HashKvPropertyTest : public ::testing::TestWithParam<HashKvSweepParams> {
 protected:
  void SetUp() override { dir_ = MakeTempDir("hkv_prop"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }
  std::string dir_;
};

TEST_P(HashKvPropertyTest, MatchesReferenceUnderRandomOps) {
  const HashKvSweepParams& p = GetParam();
  HashKvOptions options;
  options.memory_bytes = p.memory_bytes;
  options.page_bytes = p.page_bytes;
  options.max_space_amplification = p.msa;
  options.compaction_min_bytes = 16 * 1024;
  options.index_buckets = 64;  // force chains
  std::unique_ptr<HashKvStore> store;
  ASSERT_TRUE(HashKvStore::Open(dir_, options, &store).ok());

  std::map<std::string, std::string> reference;
  Random rng(p.memory_bytes + p.page_bytes);
  for (int step = 0; step < 4000; ++step) {
    const std::string key = "key" + std::to_string(rng.Uniform(60));
    const uint64_t op = rng.Uniform(10);
    if (op < 5) {  // Upsert (varying sizes defeat in-place updates sometimes)
      std::string value(1 + rng.Uniform(200), static_cast<char>('a' + step % 26));
      ASSERT_TRUE(store->Upsert(key, value).ok());
      reference[key] = value;
    } else if (op < 7) {  // Rmw append
      Status s = store->Rmw(key, [&](const std::string* existing) {
        std::string updated = existing ? *existing : std::string();
        updated += "+" + std::to_string(step);
        return updated;
      });
      ASSERT_TRUE(s.ok());
      reference[key] += "+" + std::to_string(step);
    } else if (op < 8) {  // Delete
      ASSERT_TRUE(store->Delete(key).ok());
      reference.erase(key);
    } else {  // Read
      std::string value;
      Status s = store->Read(key, &value);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_TRUE(s.IsNotFound()) << key << " step " << step;
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        EXPECT_EQ(value, it->second) << key << " step " << step;
      }
    }
  }
  for (const auto& [key, expected] : reference) {
    std::string value;
    ASSERT_TRUE(store->Read(key, &value).ok()) << key;
    EXPECT_EQ(value, expected) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HashKvPropertyTest,
                         ::testing::Values(HashKvSweepParams{8 * 1024, 2048, 2.0},
                                           HashKvSweepParams{64 * 1024, 8192, 4.0},
                                           HashKvSweepParams{1 << 20, 65536, 1.5},
                                           HashKvSweepParams{16 * 1024, 4096, 10.0}),
                         [](const ::testing::TestParamInfo<HashKvSweepParams>& info) {
                           return "mem" + std::to_string(info.param.memory_bytes) + "_pg" +
                                  std::to_string(info.param.page_bytes) + "_msa" +
                                  std::to_string(static_cast<int>(info.param.msa * 10));
                         });

}  // namespace
}  // namespace flowkv
