// AUR store tests (paper §4.2): write buffer hashed by (key, initial
// window), index + data log files, ETT maintenance, predictive batch read
// (hits, misses, wrong-ETT eviction, read amplification), session merges,
// and MSA-driven integrated compaction.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/file.h"
#include "src/flowkv/aur_store.h"

namespace flowkv {
namespace {

class AurStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("aur_test"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }

  std::unique_ptr<AurStore> OpenStore(FlowKvOptions options = {}, int64_t session_gap = 100) {
    std::unique_ptr<AurStore> store;
    Status s = AurStore::Open(dir_, options,
                              std::make_unique<SessionEttPredictor>(session_gap), &store);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return store;
  }

  std::string dir_;
};

TEST(EttPredictorTest, SessionEttIsMaxTimestampPlusGap) {
  SessionEttPredictor predictor(30);
  EXPECT_EQ(predictor.Estimate(Window(0, 100), 70), 100);
  EXPECT_EQ(predictor.Estimate(Window(0, 100), 200), 230);
  EXPECT_TRUE(predictor.predictable());
}

TEST(EttPredictorTest, AlignedEttIsWindowEnd) {
  AlignedEttPredictor predictor;
  EXPECT_EQ(predictor.Estimate(Window(0, 100), 42), 99);
}

TEST(EttPredictorTest, UnpredictableDisablesPrefetch) {
  UnpredictableEttPredictor predictor;
  EXPECT_EQ(predictor.Estimate(Window(0, 100), 42), EttPredictor::kUnknown);
  EXPECT_FALSE(predictor.predictable());
}

TEST(EttPredictorTest, FactoryMapsWindowKinds) {
  OperatorStateSpec spec;
  spec.window_kind = WindowKind::kSession;
  spec.session_gap_ms = 7;
  auto p = MakeEttPredictor(spec);
  EXPECT_EQ(p->Estimate(Window(0, 10), 100), 107);
  spec.window_kind = WindowKind::kTumbling;
  EXPECT_EQ(MakeEttPredictor(spec)->Estimate(Window(0, 10), 100), 9);
  spec.window_kind = WindowKind::kCount;
  EXPECT_FALSE(MakeEttPredictor(spec)->predictable());
  spec.window_kind = WindowKind::kCustom;
  EXPECT_FALSE(MakeEttPredictor(spec)->predictable());
}

TEST_F(AurStoreTest, AppendGetFromMemory) {
  auto store = OpenStore();
  Window w(0, 100);
  ASSERT_TRUE(store->Append("k", "v1", w, 10).ok());
  ASSERT_TRUE(store->Append("k", "v2", w, 20).ok());
  std::vector<std::string> values;
  ASSERT_TRUE(store->Get("k", w, &values).ok());
  EXPECT_EQ(values, (std::vector<std::string>{"v1", "v2"}));
  // Fetch-and-remove: second read finds nothing.
  EXPECT_TRUE(store->Get("k", w, &values).IsNotFound());
}

TEST_F(AurStoreTest, GetAfterFlushReadsDisk) {
  FlowKvOptions options;
  options.write_buffer_bytes = 512;
  auto store = OpenStore(options);
  Window w(0, 100);
  std::vector<std::string> expected;
  for (int i = 0; i < 50; ++i) {
    std::string v = "value" + std::to_string(i);
    ASSERT_TRUE(store->Append("k", v, w, i).ok());
    expected.push_back(v);
  }
  EXPECT_GT(store->stats().flushes, 0);
  std::vector<std::string> values;
  ASSERT_TRUE(store->Get("k", w, &values).ok());
  EXPECT_EQ(values, expected);  // disk segments first, buffered tail after
}

TEST_F(AurStoreTest, PredictiveBatchReadPrefetchesImminentWindows) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1;      // flush on every append
  options.read_batch_ratio = 0.5;      // prefetch half the live windows
  auto store = OpenStore(options, /*session_gap=*/100);
  // 10 windows with staggered ETTs (max ts = window start).
  for (int i = 0; i < 10; ++i) {
    Window w(i * 1000, i * 1000 + 100);
    ASSERT_TRUE(store->Append("k" + std::to_string(i), "v", w, i * 1000).ok());
  }
  // Reading the earliest-ETT window must batch-load the next-earliest ones.
  std::vector<std::string> values;
  ASSERT_TRUE(store->Get("k0", Window(0, 100), &values).ok());
  EXPECT_EQ(store->stats().prefetch_misses, 1);
  EXPECT_GT(store->PrefetchBufferEntries(), 0u);
  // The next reads (in ETT order) hit the prefetch buffer.
  ASSERT_TRUE(store->Get("k1", Window(1000, 1100), &values).ok());
  EXPECT_EQ(store->stats().prefetch_hits, 1);
}

TEST_F(AurStoreTest, ZeroBatchRatioDisablesPrefetch) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1;
  options.read_batch_ratio = 0.0;
  auto store = OpenStore(options);
  for (int i = 0; i < 10; ++i) {
    Window w(i * 1000, i * 1000 + 100);
    ASSERT_TRUE(store->Append("k" + std::to_string(i), "v", w, i * 1000).ok());
  }
  std::vector<std::string> values;
  ASSERT_TRUE(store->Get("k0", Window(0, 100), &values).ok());
  EXPECT_EQ(store->PrefetchBufferEntries(), 0u);  // only the requested entry loaded
  ASSERT_TRUE(store->Get("k1", Window(1000, 1100), &values).ok());
  EXPECT_EQ(store->stats().prefetch_hits, 0);
  EXPECT_EQ(store->stats().prefetch_misses, 2);
}

TEST_F(AurStoreTest, WrongEttEvictsPrefetchedState) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1;
  options.read_batch_ratio = 1.0;  // prefetch everything live
  auto store = OpenStore(options, /*session_gap=*/100);
  Window w_a(0, 100), w_b(50, 150);
  ASSERT_TRUE(store->Append("a", "v1", w_a, 0).ok());
  ASSERT_TRUE(store->Append("b", "v1", w_b, 50).ok());
  // Miss on "a" prefetches "b" too.
  std::vector<std::string> values;
  ASSERT_TRUE(store->Get("a", w_a, &values).ok());
  EXPECT_EQ(store->PrefetchBufferEntries(), 1u);
  // A new tuple for b's window proves the ETT wrong -> eviction.
  ASSERT_TRUE(store->Append("b", "v2", w_b, 120).ok());
  EXPECT_EQ(store->PrefetchBufferEntries(), 0u);
  EXPECT_EQ(store->stats().prefetch_evictions, 1);
  // The data is still complete: re-read from disk + buffer.
  ASSERT_TRUE(store->Get("b", w_b, &values).ok());
  EXPECT_EQ(values, (std::vector<std::string>{"v1", "v2"}));
  // Eviction caused the disk tuple to be read twice (read amplification).
  EXPECT_GT(store->stats().ReadAmplification(), 1.0);
}

TEST_F(AurStoreTest, MergeWindowsMovesStateAndTimestamps) {
  FlowKvOptions options;
  options.write_buffer_bytes = 256;  // spill some of it to disk
  auto store = OpenStore(options);
  Window src1(0, 100), src2(200, 300), dst(0, 300);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store->Append("k", "s1-" + std::to_string(i), src1, i).ok());
    ASSERT_TRUE(store->Append("k", "s2-" + std::to_string(i), src2, 200 + i).ok());
  }
  ASSERT_TRUE(store->MergeWindows("k", {src1, src2}, dst).ok());
  std::vector<std::string> values;
  EXPECT_TRUE(store->Get("k", src1, &values).IsNotFound());
  EXPECT_TRUE(store->Get("k", src2, &values).IsNotFound());
  ASSERT_TRUE(store->Get("k", dst, &values).ok());
  EXPECT_EQ(values.size(), 40u);
}

TEST_F(AurStoreTest, CompactionReclaimsConsumedSegments) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1;
  options.max_space_amplification = 1e9;  // manual compaction only
  auto store = OpenStore(options);
  for (int i = 0; i < 50; ++i) {
    Window w(i * 10, i * 10 + 10);
    ASSERT_TRUE(store->Append("k" + std::to_string(i), std::string(100, 'v'), w, i * 10).ok());
  }
  // Consume the first 40 windows: their segments become dead.
  std::vector<std::string> values;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(store->Get("k" + std::to_string(i), Window(i * 10, i * 10 + 10), &values).ok());
  }
  EXPECT_GT(store->SpaceAmplification(), 2.0);
  const uint64_t before = store->DataLogBytes();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_LT(store->DataLogBytes(), before);
  EXPECT_DOUBLE_EQ(store->SpaceAmplification(), 1.0);
  // Survivors are intact after the zero-copy rewrite.
  for (int i = 40; i < 50; ++i) {
    ASSERT_TRUE(store->Get("k" + std::to_string(i), Window(i * 10, i * 10 + 10), &values).ok());
    EXPECT_EQ(values.size(), 1u);
  }
}

TEST_F(AurStoreTest, MsaTriggersIntegratedCompaction) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1;
  options.max_space_amplification = 1.5;
  options.read_batch_ratio = 0.0;
  auto store = OpenStore(options);
  // Interleave appends and consuming reads; dead bytes accumulate and the
  // MSA threshold must fire compaction from inside the batch-read scan.
  std::vector<std::string> values;
  for (int i = 0; i < 100; ++i) {
    Window w(i * 10, i * 10 + 10);
    ASSERT_TRUE(store->Append("k" + std::to_string(i), std::string(200, 'v'), w, i * 10).ok());
    if (i >= 2) {
      int j = i - 2;
      ASSERT_TRUE(
          store->Get("k" + std::to_string(j), Window(j * 10, j * 10 + 10), &values).ok());
    }
  }
  EXPECT_GT(store->stats().compactions, 0);
  EXPECT_LE(store->SpaceAmplification(), 2.0);
}

TEST_F(AurStoreTest, HighHitRatioYieldsLowReadAmplification) {
  // Read windows in exactly ETT order: every prefetch is useful, so the
  // measured amplification must approach 1 (paper Eq. 1 with r -> 1).
  FlowKvOptions options;
  options.write_buffer_bytes = 1;
  options.read_batch_ratio = 0.2;
  auto store = OpenStore(options);
  const int kWindows = 100;
  for (int i = 0; i < kWindows; ++i) {
    Window w(i * 10, i * 10 + 10);
    ASSERT_TRUE(store->Append("k" + std::to_string(i), "v", w, i * 10).ok());
  }
  std::vector<std::string> values;
  for (int i = 0; i < kWindows; ++i) {
    ASSERT_TRUE(store->Get("k" + std::to_string(i), Window(i * 10, i * 10 + 10), &values).ok());
  }
  EXPECT_GT(store->stats().PrefetchHitRatio(), 0.7);
  EXPECT_LE(store->stats().ReadAmplification(), 1.1);
}

TEST(AdaptiveEttPredictorTest, UnpredictableUntilWarmupThenLearnsDelay) {
  AdaptiveEttPredictor predictor(/*warmup=*/10, /*safety_quantile=*/0.9);
  EXPECT_FALSE(predictor.predictable());
  EXPECT_EQ(predictor.Estimate(Window(0, 100), 50), EttPredictor::kUnknown);
  for (int i = 0; i < 10; ++i) {
    predictor.Observe(100);  // the custom function always triggers 100ms late
  }
  EXPECT_TRUE(predictor.predictable());
  EXPECT_EQ(predictor.Estimate(Window(0, 1), 50), 150);
}

TEST(AdaptiveEttPredictorTest, QuantileIsConservative) {
  AdaptiveEttPredictor predictor(/*warmup=*/1, /*safety_quantile=*/0.9);
  for (int i = 1; i <= 100; ++i) {
    predictor.Observe(i);  // delays 1..100
  }
  const int64_t est = predictor.Estimate(Window(0, 1), 0);
  EXPECT_GE(est, 85);  // ~P90 of 1..100
  EXPECT_LE(est, 100);
}

TEST_F(AurStoreTest, AdaptivePredictorEnablesPrefetchForCustomWindows) {
  // A custom window function that (unknown to FlowKV) always triggers 200ms
  // after the last tuple. With the adaptive predictor, the store profiles
  // real triggers and predictive batch read kicks in after warm-up.
  FlowKvOptions options;
  options.write_buffer_bytes = 1;
  options.read_batch_ratio = 0.5;
  std::unique_ptr<AurStore> store;
  ASSERT_TRUE(AurStore::Open(dir_, options,
                             std::make_unique<AdaptiveEttPredictor>(/*warmup=*/8, 0.9),
                             &store)
                  .ok());
  std::vector<std::string> values;
  int64_t prefetched_before = 0;
  for (int round = 0; round < 6; ++round) {
    // Each round: 4 windows appended, then triggered 200ms after their tuple.
    const int64_t base = round * 10'000;
    for (int i = 0; i < 4; ++i) {
      Window w(base + i * 1000, base + i * 1000 + 100);
      ASSERT_TRUE(store->Append("k" + std::to_string(i), "v", w, base + i * 1000).ok());
    }
    // Advance the event-time clock via a dummy key, then trigger in order.
    for (int i = 0; i < 4; ++i) {
      Window w(base + i * 1000, base + i * 1000 + 100);
      ASSERT_TRUE(store->Append("clock", "t", Window(base + 9000, base + 9100),
                                base + i * 1000 + 200).ok());
      ASSERT_TRUE(store->Get("k" + std::to_string(i), w, &values).ok());
    }
    if (round == 2) {
      prefetched_before = store->stats().prefetched_entries;
    }
  }
  // Warm-up happened within the first rounds; later rounds prefetched.
  EXPECT_GT(store->stats().prefetch_hits, 0);
  EXPECT_GT(store->stats().prefetched_entries, prefetched_before);
}

TEST_F(AurStoreTest, CorruptIndexLogSurfacesCorruption) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1;
  auto store = OpenStore(options);
  ASSERT_TRUE(store->Append("k", "v", Window(0, 100), 10).ok());
  // Truncate the index log mid-entry.
  const std::string index_path = JoinPath(dir_, "aur_index_0.log");
  std::string contents;
  ASSERT_TRUE(ReadFileToString(index_path, &contents).ok());
  ASSERT_GT(contents.size(), 4u);
  ASSERT_TRUE(WriteStringToFile(index_path, contents.substr(0, contents.size() - 3)).ok());
  std::vector<std::string> values;
  EXPECT_TRUE(store->Get("k", Window(0, 100), &values).IsCorruption());
}

TEST_F(AurStoreTest, GetMissingIsNotFound) {
  auto store = OpenStore();
  std::vector<std::string> values;
  EXPECT_TRUE(store->Get("nope", Window(0, 10), &values).IsNotFound());
}

}  // namespace
}  // namespace flowkv
