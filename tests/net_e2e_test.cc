// End-to-end remote-state equivalence: every NEXMark query runs once against
// the embedded FlowKV backend and once through RemoteBackend → loopback
// flowkv_server, and must produce the identical multiset of results. This is
// the acceptance test for the state-server subsystem: the wire protocol,
// sharding, batching, and cross-shard window drains are all on the path.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/backends/remote_backend.h"
#include "src/common/env.h"
#include "src/net/server.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"
#include "src/spe/job_runner.h"

namespace flowkv {
namespace {

using Results = std::vector<std::tuple<int64_t, std::string, std::string>>;

class ResultCollector : public Collector {
 public:
  Status Emit(const Event& event) override {
    results.emplace_back(event.timestamp, event.key, event.value);
    return Status::Ok();
  }
  Results results;
};

struct RunOutcome {
  Status status;
  Results results;
};

RunOutcome RunQueryOn(const std::string& query, StateBackendFactory* factory,
                      const NexmarkConfig& nexmark, const QueryParams& params) {
  RunOutcome outcome;
  auto collector = std::make_shared<ResultCollector>();
  Pipeline pipeline;
  outcome.status = BuildNexmarkQuery(query, params, &pipeline);
  if (!outcome.status.ok()) {
    return outcome;
  }
  outcome.status = pipeline.Open(factory, 0, collector.get());
  if (!outcome.status.ok()) {
    return outcome;
  }
  NexmarkSource source(nexmark, 0);
  Event event;
  int64_t max_ts = 0;
  int since_watermark = 0;
  while (source.Next(&event)) {
    outcome.status = pipeline.Process(event);
    if (!outcome.status.ok()) {
      return outcome;
    }
    max_ts = event.timestamp;
    if (++since_watermark >= 128) {
      since_watermark = 0;
      outcome.status = pipeline.AdvanceWatermark(max_ts);
      if (!outcome.status.ok()) {
        return outcome;
      }
    }
  }
  outcome.status = pipeline.Finish();
  outcome.results = collector->results;
  std::sort(outcome.results.begin(), outcome.results.end());
  return outcome;
}

class RemoteEquivalenceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("net_e2e");
    net::ServerOptions options;
    options.num_shards = 2;
    options.data_dir = JoinPath(dir_, "server_data");
    options.checkpoint_dir = JoinPath(dir_, "server_ckpt");
    ASSERT_TRUE(net::Server::Start(options, &server_).ok());
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
    RemoveDirRecursively(dir_).IgnoreError();
  }

  std::string dir_;
  std::unique_ptr<net::Server> server_;
};

TEST_P(RemoteEquivalenceTest, RemoteMatchesEmbedded) {
  const std::string query = GetParam();

  NexmarkConfig nexmark;
  nexmark.events_per_worker = 8'000;
  nexmark.num_people = 150;
  nexmark.num_auctions = 150;
  nexmark.inter_event_ms = 10;

  QueryParams params;
  params.window_size_ms = 20'000;
  params.session_gap_ms = 2'000;

  FlowKvBackendFactory embedded(JoinPath(dir_, "embedded"), FlowKvOptions{});
  RunOutcome reference = RunQueryOn(query, &embedded, nexmark, params);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_FALSE(reference.results.empty()) << "query produced no output";

  net::ClientOptions copts;
  copts.port = server_->port();
  copts.request_timeout_ms = 60'000;
  RemoteBackendFactory remote(copts);
  RunOutcome remote_run = RunQueryOn(query, &remote, nexmark, params);
  ASSERT_TRUE(remote_run.status.ok()) << remote_run.status.ToString();
  EXPECT_EQ(remote_run.results.size(), reference.results.size());
  EXPECT_EQ(remote_run.results, reference.results)
      << "remote state server diverges from embedded FlowKV";
}

INSTANTIATE_TEST_SUITE_P(AllQueries, RemoteEquivalenceTest,
                         ::testing::ValuesIn(NexmarkQueryNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace flowkv
