// End-to-end distributed tracing and live introspection:
//  - a NEXMark query through RemoteBackend → loopback flowkv_server with
//    tracing enabled produces client spans and server spans that share
//    trace ids, with the queue-wait vs execution breakdown present;
//  - a new client against old-server semantics (emulate_legacy_proto)
//    interoperates with tracing silently off — the compatibility contract;
//  - the kStats op returns a parseable introspection document whose slow
//    log captures requests above the threshold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/backends/remote_backend.h"
#include "src/common/env.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"
#include "src/obs/trace.h"
#include "src/spe/job_runner.h"
#include "tools/stat_format.h"

namespace flowkv {
namespace {

class NullCollector : public Collector {
 public:
  Status Emit(const Event& event) override {
    ++results;
    return Status::Ok();
  }
  int results = 0;
};

// Runs `query` once against `factory` (worker 0), returning the status.
Status RunQueryOn(const std::string& query, StateBackendFactory* factory,
                  int* results_out) {
  NexmarkConfig nexmark;
  nexmark.events_per_worker = 4'000;
  nexmark.num_people = 150;
  nexmark.num_auctions = 150;
  nexmark.inter_event_ms = 10;
  QueryParams params;
  params.window_size_ms = 20'000;
  params.session_gap_ms = 2'000;

  NullCollector collector;
  Pipeline pipeline;
  FLOWKV_RETURN_IF_ERROR(BuildNexmarkQuery(query, params, &pipeline));
  FLOWKV_RETURN_IF_ERROR(pipeline.Open(factory, 0, &collector));
  NexmarkSource source(nexmark, 0);
  Event event;
  int64_t max_ts = 0;
  int since_watermark = 0;
  while (source.Next(&event)) {
    FLOWKV_RETURN_IF_ERROR(pipeline.Process(event));
    max_ts = event.timestamp;
    if (++since_watermark >= 128) {
      since_watermark = 0;
      FLOWKV_RETURN_IF_ERROR(pipeline.AdvanceWatermark(max_ts));
    }
  }
  FLOWKV_RETURN_IF_ERROR(pipeline.Finish());
  if (results_out != nullptr) {
    *results_out = collector.results;
  }
  return Status::Ok();
}

class NetTraceE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("net_trace_e2e");
    obs::Tracing::Reset();
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
    obs::Tracing::Disable();
    obs::Tracing::Reset();
    RemoveDirRecursively(dir_).IgnoreError();
  }

  void StartServer(net::ServerOptions options) {
    options.num_shards = 2;
    options.data_dir = JoinPath(dir_, "server_data");
    ASSERT_TRUE(net::Server::Start(options, &server_).ok());
  }

  std::string dir_;
  std::unique_ptr<net::Server> server_;
};

// Collects the trace_id arg values of all events named `name`.
std::set<int64_t> TraceIdsOf(const std::vector<obs::TraceEvent>& events,
                             const char* name) {
  std::set<int64_t> ids;
  for (const obs::TraceEvent& ev : events) {
    if (std::strcmp(ev.name, name) != 0) continue;
    for (int i = 0; i < ev.n_args; ++i) {
      if (std::strcmp(ev.arg_name[i], "trace_id") == 0 && ev.arg_val[i] != 0) {
        ids.insert(ev.arg_val[i]);
      }
    }
  }
  return ids;
}

TEST_F(NetTraceE2eTest, ClientAndServerSpansShareTraceIds) {
  StartServer(net::ServerOptions{});
  obs::Tracing::Enable();

  net::ClientOptions copts;
  copts.port = server_->port();
  copts.request_timeout_ms = 60'000;
  RemoteBackendFactory remote(copts);
  int results = 0;
  ASSERT_TRUE(RunQueryOn("q11", &remote, &results).ok());
  EXPECT_GT(results, 0);

  // Quiesce all writers (shard threads included) before reading the rings.
  server_->Stop();
  server_.reset();
  obs::Tracing::Disable();

  const std::vector<obs::TraceEvent> events = obs::Tracing::SnapshotEvents();
  const std::set<int64_t> client_ids = TraceIdsOf(events, "client_batch");
  const std::set<int64_t> queue_ids = TraceIdsOf(events, "server_queue_wait");
  const std::set<int64_t> exec_ids = TraceIdsOf(events, "server_exec");
  const std::set<int64_t> request_ids = TraceIdsOf(events, "server_request");

  // The client stamped ids and the server continued them through the shard
  // queue and execution — the property that makes a merged client+server
  // Chrome trace line up.
  ASSERT_FALSE(client_ids.empty()) << "client emitted no traced batches";
  ASSERT_FALSE(queue_ids.empty()) << "no queue-wait sub-spans";
  ASSERT_FALSE(exec_ids.empty()) << "no execution sub-spans";
  for (int64_t id : queue_ids) {
    EXPECT_TRUE(client_ids.count(id)) << "queue-wait span with unknown trace id";
  }
  for (int64_t id : exec_ids) {
    EXPECT_TRUE(client_ids.count(id)) << "exec span with unknown trace id";
  }
  for (int64_t id : request_ids) {
    EXPECT_TRUE(client_ids.count(id)) << "request span with unknown trace id";
  }

  // The export carries the process identity used to merge the two sides.
  obs::Tracing::SetExportProcess(2, "flowkv_server");
  const std::string trace_path = JoinPath(dir_, "trace.json");
  ASSERT_TRUE(obs::Tracing::ExportChromeTrace(trace_path));
  std::string exported;
  ASSERT_TRUE(ReadFileToString(trace_path, &exported).ok());
  EXPECT_NE(exported.find("\"process_name\""), std::string::npos);
  EXPECT_NE(exported.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(exported.find("server_queue_wait"), std::string::npos);
  EXPECT_NE(exported.find("client_batch"), std::string::npos);
}

TEST_F(NetTraceE2eTest, NewClientAgainstLegacyServerTracesSilentlyOff) {
  // Old-server semantics: trace bytes or a kStats op kill the connection,
  // and the capability probe gets the legacy per-op error. A tracing-enabled
  // client must detect this via the probe and keep the extension off the
  // wire — the query succeeds, no server span carries a trace id.
  net::ServerOptions options;
  options.emulate_legacy_proto = true;
  StartServer(options);
  obs::Tracing::Enable();

  net::ClientOptions copts;
  copts.port = server_->port();
  copts.request_timeout_ms = 60'000;
  RemoteBackendFactory remote(copts);
  int results = 0;
  ASSERT_TRUE(RunQueryOn("q11", &remote, &results).ok());
  EXPECT_GT(results, 0);

  server_->Stop();
  server_.reset();
  obs::Tracing::Disable();

  const std::vector<obs::TraceEvent> events = obs::Tracing::SnapshotEvents();
  EXPECT_TRUE(TraceIdsOf(events, "server_queue_wait").empty());
  EXPECT_TRUE(TraceIdsOf(events, "server_exec").empty());
  // The client still traced locally — with the null (zero) trace id.
  bool saw_client_batch = false;
  for (const obs::TraceEvent& ev : events) {
    if (std::strcmp(ev.name, "client_batch") == 0) saw_client_batch = true;
  }
  EXPECT_TRUE(saw_client_batch);
  EXPECT_TRUE(TraceIdsOf(events, "client_batch").empty());
}

TEST_F(NetTraceE2eTest, OldClientAgainstNewServerUsesBaseProtocol) {
  // An old client is byte-identical to a new client with tracing disabled:
  // no probe, no trace block. The new server must serve it unchanged.
  StartServer(net::ServerOptions{});
  ASSERT_FALSE(obs::Tracing::enabled());

  net::ClientOptions copts;
  copts.port = server_->port();
  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(copts, &client).ok());
  ASSERT_TRUE(client->Ping().ok());

  OperatorStateSpec spec;
  spec.name = "compat";
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = true;
  spec.window_size_ms = 1000;
  uint64_t handle = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("compat.h0", spec, &handle, &pattern).ok());
  ASSERT_TRUE(client->RmwPut(handle, "k", Window(0, 1000), "v").ok());
  std::string acc;
  ASSERT_TRUE(client->RmwGet(handle, "k", Window(0, 1000), &acc).ok());
  EXPECT_EQ(acc, "v");
}

TEST_F(NetTraceE2eTest, StatsOpReportsShardsAndSlowLog) {
  net::ServerOptions options;
  // Tiny positive threshold: every finished request lands in the slow log
  // (threshold 0 disables it), standing in for an injected-latency request.
  options.slow_request_threshold_ms = 1e-6;
  options.slow_log_size = 8;
  StartServer(options);

  net::ClientOptions copts;
  copts.port = server_->port();
  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(copts, &client).ok());

  OperatorStateSpec spec;
  spec.name = "stats";
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = true;
  spec.window_size_ms = 1000;
  uint64_t handle = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("stats.h0", spec, &handle, &pattern).ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        client->RmwPut(handle, "k" + std::to_string(i % 8), Window(0, 1000),
                       "v" + std::to_string(i))
            .ok());
  }
  ASSERT_TRUE(client->Flush().ok());

  std::string json;
  ASSERT_TRUE(client->Stats(&json).ok());
  tools::JsonValue doc;
  ASSERT_TRUE(tools::ParseJson(json, &doc)) << json;

  const tools::JsonValue* server = doc.Get("server");
  ASSERT_NE(server, nullptr);
  EXPECT_GE(server->Num("requests"), 2.0);  // open + flushed batch at least
  EXPECT_GT(server->Num("bytes_in"), 0.0);
  EXPECT_GE(server->Num("open_conns"), 1.0);

  const tools::JsonValue* shards = doc.Get("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->arr.size(), 2u);
  double total_shard_ops = 0;
  for (const tools::JsonValue& shard : shards->arr) {
    total_shard_ops += shard.Num("ops");
    EXPECT_GE(shard.Num("queue_depth"), 0.0);
  }
  EXPECT_GE(total_shard_ops, 64.0);

  const tools::JsonValue* slow = doc.Get("slow_requests");
  ASSERT_NE(slow, nullptr);
  ASSERT_FALSE(slow->arr.empty()) << "slow log missed threshold-crossing requests";
  // Slowest-first ordering, and the breakdown never exceeds the total.
  double prev = 1e18;
  for (const tools::JsonValue& s : slow->arr) {
    const double total_ms = s.Num("total_ms");
    EXPECT_LE(total_ms, prev);
    prev = total_ms;
    EXPECT_LE(s.Num("exec_ms"), total_ms + 1e-3);
    EXPECT_GE(s.Num("ops"), 1.0);
  }

  // A second snapshot reports a fresh (smaller) rate window.
  std::string json2;
  ASSERT_TRUE(client->Stats(&json2).ok());
  tools::JsonValue doc2;
  ASSERT_TRUE(tools::ParseJson(json2, &doc2));
  EXPECT_LE(doc2.Num("window_s"), doc.Num("window_s"));
}

}  // namespace
}  // namespace flowkv
