// Chaos tests for the state service: a FaultInjectionSocket tortures the
// client ↔ server path (refused connects, resets mid-frame, short I/O,
// latency spikes, corrupted bytes) while the workload on top must either
// recover transparently through the client's retry/backoff machinery or fail
// with a clean status — and NEXMark results through the faulted remote
// backend must stay identical to the embedded reference.
//
// Also home of the SIGTERM-drain crash sweep (fault_injection_fs.h): a
// simulated power failure is armed at every sync point of the server's drain
// checkpoint in turn; whatever the crash point, a restarted server must come
// back serving every previously committed epoch, and the new epoch's data
// exactly when the drain reported success.
#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/backends/flowkv_backend.h"
#include "src/backends/remote_backend.h"
#include "src/common/env.h"
#include "src/common/fault_injection_fs.h"
#include "src/common/fault_injection_socket.h"
#include "src/common/fs_hooks.h"
#include "src/common/net_hooks.h"
#include "src/net/async_client.h"
#include "src/net/client.h"
#include "src/net/replica.h"
#include "src/net/server.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"
#include "src/spe/job_runner.h"

namespace flowkv {
namespace {

using Results = std::vector<std::tuple<int64_t, std::string, std::string>>;

OperatorStateSpec RmwSpec(const std::string& name) {
  OperatorStateSpec spec;
  spec.name = name;
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = true;
  spec.window_size_ms = 1000;
  return spec;
}

class ResultCollector : public Collector {
 public:
  Status Emit(const Event& event) override {
    results.emplace_back(event.timestamp, event.key, event.value);
    return Status::Ok();
  }
  Results results;
};

struct RunOutcome {
  Status status;
  Results results;
};

RunOutcome RunQueryOn(const std::string& query, StateBackendFactory* factory,
                      const NexmarkConfig& nexmark, const QueryParams& params) {
  RunOutcome outcome;
  auto collector = std::make_shared<ResultCollector>();
  Pipeline pipeline;
  outcome.status = BuildNexmarkQuery(query, params, &pipeline);
  if (!outcome.status.ok()) {
    return outcome;
  }
  outcome.status = pipeline.Open(factory, 0, collector.get());
  if (!outcome.status.ok()) {
    return outcome;
  }
  NexmarkSource source(nexmark, 0);
  Event event;
  int64_t max_ts = 0;
  int since_watermark = 0;
  while (source.Next(&event)) {
    outcome.status = pipeline.Process(event);
    if (!outcome.status.ok()) {
      return outcome;
    }
    max_ts = event.timestamp;
    if (++since_watermark >= 128) {
      since_watermark = 0;
      outcome.status = pipeline.AdvanceWatermark(max_ts);
      if (!outcome.status.ok()) {
        return outcome;
      }
    }
  }
  outcome.status = pipeline.Finish();
  outcome.results = collector->results;
  std::sort(outcome.results.begin(), outcome.results.end());
  return outcome;
}

NexmarkConfig SmallNexmark() {
  NexmarkConfig nexmark;
  nexmark.events_per_worker = 4'000;
  nexmark.num_people = 120;
  nexmark.num_auctions = 120;
  nexmark.inter_event_ms = 10;
  return nexmark;
}

QueryParams DefaultParams() {
  QueryParams params;
  params.window_size_ms = 20'000;
  params.session_gap_ms = 2'000;
  return params;
}

// ---------------------------------------------------------------------------
// Socket chaos against a live server.

class NetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir("net_chaos");
    net::ServerOptions options;
    options.num_shards = 2;
    options.data_dir = JoinPath(dir_, "server_data");
    options.checkpoint_dir = JoinPath(dir_, "server_ckpt");
    ASSERT_TRUE(net::Server::Start(options, &server_).ok());
    faults_ = std::make_unique<FaultInjectionSocket>(/*seed=*/4242);
    InstallNetHooks(faults_.get());
  }

  void TearDown() override {
    InstallNetHooks(nullptr);
    if (server_ != nullptr) {
      server_->Stop();
    }
    RemoveDirRecursively(dir_).IgnoreError();
  }

  net::ClientOptions RetryingOptions() {
    net::ClientOptions copts;
    copts.port = server_->port();
    copts.connect_timeout_ms = 10'000;
    copts.request_timeout_ms = 120'000;
    copts.max_retries = 10;
    copts.max_reconnect_attempts = 10;
    copts.reconnect_backoff_ms = 5;
    copts.reconnect_backoff_max_ms = 100;
    copts.jitter_seed = 7;
    // A corrupted length prefix stalls the stream mid-frame; give up on the
    // stalled connection quickly so the sweep spends its time on retries.
    copts.frame_stall_timeout_ms = 500;
    return copts;
  }

  std::string dir_;
  std::unique_ptr<net::Server> server_;
  std::unique_ptr<FaultInjectionSocket> faults_;
};

TEST_F(NetChaosTest, RefusedConnectIsRetriedWithinTimeout) {
  faults_->FailConnectAt(0);  // the very next connect is refused
  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(RetryingOptions(), &client).ok());
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GE(faults_->injected_connect_failures(), 1);
}

TEST_F(NetChaosTest, SignalStormOnlyInterruptsNeverFails) {
  // SIGUSR1 fired at the client thread every few hundred microseconds while
  // latency faults widen every poll window, so connect()/poll()/send()/recv()
  // keep returning EINTR mid-request. Interrupted waits must resume against
  // the same absolute deadline — no spurious failures, no lost responses.
  struct sigaction sa;
  struct sigaction old_sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: syscalls must see EINTR
  ASSERT_EQ(0, ::sigaction(SIGUSR1, &sa, &old_sa));

  SocketFaultPlan plan;
  plan.latency_prob = 0.2;
  plan.latency_min_ms = 1;
  plan.latency_max_ms = 4;
  faults_->SetPlan(plan);

  std::atomic<bool> stop{false};
  const pthread_t victim = pthread_self();
  std::thread storm([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ::pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(RetryingOptions(), &client).ok());
  uint64_t handle = 0;
  ASSERT_TRUE(client->OpenStore("chaos.eintr.h0", RmwSpec("chaos"), &handle, nullptr).ok());
  const Window w(0, 1000);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client->RmwPut(handle, "k" + std::to_string(i), w, "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(client->Flush().ok());
  for (int i = 0; i < 200; ++i) {
    std::string value;
    ASSERT_TRUE(client->RmwGet(handle, "k" + std::to_string(i), w, &value).ok());
    EXPECT_EQ(value, "v" + std::to_string(i));
  }

  stop.store(true);
  storm.join();
  ::sigaction(SIGUSR1, &old_sa, nullptr);
  faults_->ClearFaults();
}

TEST_F(NetChaosTest, SendResetIsRetriedAndIdempotentWritesSurvive) {
  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(RetryingOptions(), &client).ok());
  uint64_t handle = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("chaos.send.h0", RmwSpec("chaos"), &handle, &pattern).ok());
  const Window w(0, 1000);
  ASSERT_TRUE(client->RmwPut(handle, "k1", w, "v1").ok());
  ASSERT_TRUE(client->Flush().ok());

  faults_->ResetSendAt(0);  // reset the very next send mid-frame
  ASSERT_TRUE(client->RmwPut(handle, "k2", w, "v2").ok());
  const Status flushed = client->Flush();
  ASSERT_TRUE(flushed.ok()) << flushed.ToString();
  EXPECT_GE(faults_->injected_resets(), 1);

  std::string value;
  ASSERT_TRUE(client->RmwGet(handle, "k1", w, &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(client->RmwGet(handle, "k2", w, &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST_F(NetChaosTest, RecvResetReplaysTheBatchAtLeastOnce) {
  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(RetryingOptions(), &client).ok());
  uint64_t handle = 0;
  StorePattern pattern;
  ASSERT_TRUE(client->OpenStore("chaos.recv.h0", RmwSpec("chaos"), &handle, &pattern).ok());
  const Window w(0, 1000);

  // The response is lost after execution; the retried batch re-applies the
  // Put — idempotent, so the state converges to exactly the written value.
  faults_->ResetRecvAt(0);
  ASSERT_TRUE(client->RmwPut(handle, "k", w, "v").ok());
  ASSERT_TRUE(client->Flush().ok());
  EXPECT_GE(faults_->injected_resets(), 1);

  std::string value;
  ASSERT_TRUE(client->RmwGet(handle, "k", w, &value).ok());
  EXPECT_EQ(value, "v");
}

TEST_F(NetChaosTest, CorruptedBytesNeverSilentlySucceed) {
  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(net::Client::Connect(RetryingOptions(), &client).ok());

  // Corrupt every received byte stream: each attempt must surface as a clean
  // connection error (the frame CRC catches the damage), never as a reply.
  SocketFaultPlan plan;
  plan.corrupt_recv_prob = 1.0;
  faults_->SetPlan(plan);
  const Status pinged = client->Ping();
  EXPECT_FALSE(pinged.ok());
  EXPECT_TRUE(pinged.IsConnectionReset() || pinged.IsTimedOut()) << pinged.ToString();
  EXPECT_GE(faults_->injected_corruptions(), 1);

  // Heal the network: the same client recovers on its next call.
  faults_->ClearFaults();
  EXPECT_TRUE(client->Ping().ok());
}

// Benign faults (short writes, short reads, latency) perturb I/O boundaries
// without losing or duplicating anything, so every state pattern must come
// through bit-identical — AAR/AUR appends included.
TEST_F(NetChaosTest, NexmarkEquivalenceUnderShortIoAndLatency) {
  const NexmarkConfig nexmark = SmallNexmark();
  const QueryParams params = DefaultParams();

  for (const std::string& query : {std::string("q5"), std::string("q7"),
                                   std::string("q11-median")}) {
    faults_->ClearFaults();
    FlowKvBackendFactory embedded(JoinPath(dir_, "embedded_benign_" + query),
                                  FlowKvOptions{});
    RunOutcome reference = RunQueryOn(query, &embedded, nexmark, params);
    ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();

    SocketFaultPlan plan;
    plan.short_send_prob = 0.2;
    plan.short_recv_prob = 0.2;
    plan.latency_prob = 0.002;
    plan.latency_min_ms = 1;
    plan.latency_max_ms = 2;
    faults_->SetPlan(plan);
    faults_->EnableCaptureFilter();  // torture only connections made below

    RemoteBackendFactory remote(RetryingOptions());
    RunOutcome remote_run = RunQueryOn(query, &remote, nexmark, params);
    faults_->ClearFaults();
    faults_->DisableCaptureFilter();
    ASSERT_TRUE(remote_run.status.ok()) << query << ": " << remote_run.status.ToString();
    EXPECT_EQ(remote_run.results, reference.results)
        << query << " diverged under short-I/O/latency chaos";
    EXPECT_GT(faults_->injected_short_ios(), 0);
  }
}

// Lossy faults (resets, refused connects, corrupted reads) force retries that
// may re-execute a delivered batch, so the sweep runs the RMW-only queries —
// their Puts are idempotent, making retry convergence exact (docs/NETWORK.md:
// at-least-once delivery + idempotent ops = exactly-once effect).
TEST_F(NetChaosTest, NexmarkEquivalenceUnderResetsAndCorruption) {
  const NexmarkConfig nexmark = SmallNexmark();
  const QueryParams params = DefaultParams();

  for (const std::string& query : {std::string("q5"), std::string("q12")}) {
    faults_->ClearFaults();
    FlowKvBackendFactory embedded(JoinPath(dir_, "embedded_lossy_" + query),
                                  FlowKvOptions{});
    RunOutcome reference = RunQueryOn(query, &embedded, nexmark, params);
    ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();

    SocketFaultPlan plan;
    plan.connect_refuse_prob = 0.05;
    plan.reset_on_send_prob = 0.002;
    plan.reset_on_recv_prob = 0.002;
    plan.corrupt_recv_prob = 0.002;
    plan.short_send_prob = 0.1;
    plan.short_recv_prob = 0.1;
    faults_->SetPlan(plan);
    faults_->EnableCaptureFilter();

    RemoteBackendFactory remote(RetryingOptions());
    RunOutcome remote_run = RunQueryOn(query, &remote, nexmark, params);
    faults_->ClearFaults();
    faults_->DisableCaptureFilter();
    ASSERT_TRUE(remote_run.status.ok()) << query << ": " << remote_run.status.ToString();
    EXPECT_EQ(remote_run.results, reference.results)
        << query << " diverged under reset/corruption chaos";
    EXPECT_GT(faults_->injected_resets() + faults_->injected_corruptions(), 0);
  }
}

// The replay buffer papers over a full outage the retry budget cannot: with
// buffering enabled and the server unreachable, writes are held locally and
// replayed once the service returns, in order, before the next read.
TEST_F(NetChaosTest, ReplayBufferRidesOutATotalOutage) {
  net::ClientOptions copts = RetryingOptions();
  copts.request_timeout_ms = 400;  // fail fast while the plan refuses all
  copts.max_retries = 1;
  copts.max_reconnect_attempts = 2;
  std::unique_ptr<net::Client> probe;
  ASSERT_TRUE(net::Client::Connect(copts, &probe).ok());

  RemoteBackendFactory factory(copts);
  factory.set_replay_buffer_bytes(1u << 20);
  std::unique_ptr<StateBackend> backend;
  ASSERT_TRUE(factory.CreateBackend(0, "outage", &backend).ok());
  std::unique_ptr<RmwState> state;
  ASSERT_TRUE(backend->CreateRmw(RmwSpec("outage"), &state).ok());
  const Window w(0, 1000);
  ASSERT_TRUE(state->Put("before", w, "b").ok());

  // Total outage: every send and connect fails. Writes must still be
  // accepted (buffered), not surfaced as errors.
  SocketFaultPlan outage;
  outage.reset_on_send_prob = 1.0;
  outage.connect_refuse_prob = 1.0;
  faults_->SetPlan(outage);
  ASSERT_TRUE(state->Put("during1", w, "d1").ok());
  ASSERT_TRUE(state->Put("during2", w, "d2").ok());

  // Service restored: the next read drains the buffer first, so it observes
  // both buffered writes.
  faults_->ClearFaults();
  std::string value;
  ASSERT_TRUE(state->Get("during1", w, &value).ok());
  EXPECT_EQ(value, "d1");
  ASSERT_TRUE(state->Get("during2", w, &value).ok());
  EXPECT_EQ(value, "d2");
  ASSERT_TRUE(state->Get("before", w, &value).ok());
  EXPECT_EQ(value, "b");
}

// ---------------------------------------------------------------------------
// Prefetch × failover: kill the primary while pushed window chunks sit in
// the client's read-ahead cache. The reconnect must clear the cache BEFORE
// anything replays against the standby — the pre-kill pushes describe the
// dead primary's shadow state and must never short-circuit a read — and the
// fresh connection must re-negotiate pushes so prefetch resumes on the
// promoted standby.

OperatorStateSpec AarSpec(const std::string& name) {
  OperatorStateSpec spec;
  spec.name = name;
  spec.window_kind = WindowKind::kTumbling;
  spec.incremental = false;
  spec.window_size_ms = 1000;
  return spec;
}

TEST(PrefetchFailoverChaosTest, PrimaryKilledWithPushesInFlight) {
  const std::string dir = MakeTempDir("chaos_prefetch");
  std::unique_ptr<net::Server> primary;
  std::unique_ptr<net::Server> standby;
  std::unique_ptr<net::ReplicaPuller> puller;

  net::ServerOptions popts;
  popts.num_shards = 2;
  popts.data_dir = JoinPath(dir, "primary_data");
  popts.checkpoint_dir = JoinPath(dir, "primary_ckpt");
  ASSERT_TRUE(net::Server::Start(popts, &primary).ok());
  net::ServerOptions sopts;
  sopts.num_shards = 2;
  sopts.data_dir = JoinPath(dir, "standby_data");
  sopts.checkpoint_dir = JoinPath(dir, "standby_ckpt");
  ASSERT_TRUE(net::Server::Start(sopts, &standby).ok());

  net::ReplicaOptions ropts;
  ropts.primary_port = primary->port();
  ropts.self_port = standby->port();
  ropts.snapshot_dir = JoinPath(dir, "standby_snapshot");
  ASSERT_TRUE(net::ReplicaPuller::Start(ropts, &puller).ok());
  for (int i = 0; i < 200 && !puller->snapshot_loaded(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(puller->snapshot_loaded()) << "standby never restored a snapshot";

  net::ClientOptions copts;
  copts.port = primary->port();
  copts.standbys = {{"127.0.0.1", standby->port()}};
  copts.request_timeout_ms = 60'000;
  copts.max_retries = 8;
  copts.max_reconnect_attempts = 8;
  copts.reconnect_backoff_ms = 10;
  copts.reconnect_backoff_max_ms = 200;
  copts.jitter_seed = 11;
  copts.enable_prefetch_push = true;
  std::unique_ptr<net::AsyncClient> client;
  ASSERT_TRUE(net::AsyncClient::Connect(copts, &client).ok());
  ASSERT_TRUE(client->push_negotiated());

  uint64_t h = 0;
  ASSERT_TRUE(client->OpenStore("chaos.pf.h0", AarSpec("pf"), &h, nullptr).ok());
  const Window w0(0, 1000);
  const Window w1(1000, 2000);
  std::vector<std::pair<std::string, std::string>> expected;
  for (int i = 0; i < 8; ++i) {
    const std::string key = "k" + std::to_string(i % 4);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(client->AppendAligned(h, key, value, w0).ok());
    expected.emplace_back(key, value);
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->AppendAligned(h, "k" + std::to_string(i), "next", w1).ok());
  }
  // Acked flush: w0's pushes are banked in the cache and (synchronous
  // replication) every append is on the standby.
  ASSERT_TRUE(client->Flush().ok());

  primary->Stop();  // hard kill, pushed chunks still cached client-side

  // The next call fails over; the reconnect must clear the cache first and
  // re-register on the standby.
  ASSERT_TRUE(client->Ping().ok());
  EXPECT_EQ(client->endpoint_index(), 1u);
  EXPECT_TRUE(client->push_negotiated());
  EXPECT_EQ(client->cache_bytes(), 0u);

  std::vector<std::pair<std::string, std::string>> got;
  bool done = false;
  while (!done) {
    std::vector<WindowChunkEntry> chunk;
    ASSERT_TRUE(client->GetWindowChunk(h, w0, &chunk, &done).ok());
    for (const WindowChunkEntry& e : chunk) {
      for (const std::string& v : e.values) {
        got.emplace_back(e.key, v);
      }
    }
  }
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << "standby is missing acked appends";
  EXPECT_EQ(client->cache_counters().hits, 0)
      << "a pre-kill push was served after failover";
  EXPECT_GE(client->cache_counters().misses, 1);

  // Prefetch works again on the promoted standby: the same dance now hits.
  const Window w2(2000, 3000);
  const Window w3(3000, 4000);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->AppendAligned(h, "k" + std::to_string(i), "late", w2).ok());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->AppendAligned(h, "k" + std::to_string(i), "later", w3).ok());
  }
  ASSERT_TRUE(client->Flush().ok());
  done = false;
  int values = 0;
  while (!done) {
    std::vector<WindowChunkEntry> chunk;
    ASSERT_TRUE(client->GetWindowChunk(h, w2, &chunk, &done).ok());
    for (const WindowChunkEntry& e : chunk) {
      values += static_cast<int>(e.values.size());
    }
  }
  EXPECT_EQ(values, 4);
  EXPECT_EQ(client->cache_counters().hits, 1)
      << "push registration did not survive failover";

  client.reset();
  puller->Stop();
  standby->Stop();
  RemoveDirRecursively(dir).IgnoreError();
}

// ---------------------------------------------------------------------------
// S2: SIGTERM-drain checkpoint crash sweep.
//
// Epoch 1 commits cleanly; then a crash is armed at sync point N of the
// second drain checkpoint, for every N until a run completes uncrashed.
// Invariant: the restarted server always serves epoch 1's batch, and serves
// the second batch exactly when the second drain reported success.

class DrainCrashSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<FaultInjectionFs>();
    InstallFsHooks(fs_.get());
  }
  void TearDown() override {
    fs_->ResetTracking();
    InstallFsHooks(nullptr);
    for (const auto& dir : dirs_) {
      RemoveDirRecursively(dir).IgnoreError();
    }
  }

  std::string TempDir(const std::string& tag) {
    dirs_.push_back(MakeTempDir(tag));
    return dirs_.back();
  }

  std::unique_ptr<FaultInjectionFs> fs_;
  std::vector<std::string> dirs_;
};

TEST_F(DrainCrashSweepTest, DrainCheckpointSurvivesCrashAtEverySyncPoint) {
  constexpr int kKeysPerBatch = 16;
  const Window w(0, 1000);
  const auto key = [](int batch, int i) {
    return "b" + std::to_string(batch) + "_k" + std::to_string(i);
  };

  for (uint64_t crash_point = 1;; ++crash_point) {
    const std::string dir = TempDir("drain_crash");
    net::ServerOptions options;
    options.num_shards = 2;
    options.data_dir = JoinPath(dir, "data");
    options.checkpoint_dir = JoinPath(dir, "ckpt");
    fs_->ResetTracking();

    // Batch 1 + clean drain: epoch 1 commits.
    {
      std::unique_ptr<net::Server> server;
      ASSERT_TRUE(net::Server::Start(options, &server).ok());
      net::ClientOptions copts;
      copts.port = server->port();
      std::unique_ptr<net::Client> client;
      ASSERT_TRUE(net::Client::Connect(copts, &client).ok());
      uint64_t handle = 0;
      StorePattern pattern;
      ASSERT_TRUE(client->OpenStore("sweep.h0", RmwSpec("sweep"), &handle, &pattern).ok());
      for (int i = 0; i < kKeysPerBatch; ++i) {
        ASSERT_TRUE(client->RmwPut(handle, key(1, i), w, "v1").ok());
      }
      ASSERT_TRUE(client->Flush().ok());
      client.reset();  // the drain below flushes outboxes faster with no peer
      ASSERT_TRUE(server->DrainAndStop().ok());
    }

    // Batch 2, then a drain with the crash armed at `crash_point`.
    bool second_drain_ok = false;
    {
      std::unique_ptr<net::Server> server;
      ASSERT_TRUE(net::Server::Start(options, &server).ok());
      net::ClientOptions copts;
      copts.port = server->port();
      std::unique_ptr<net::Client> client;
      ASSERT_TRUE(net::Client::Connect(copts, &client).ok());
      uint64_t handle = 0;
      StorePattern pattern;
      ASSERT_TRUE(client->OpenStore("sweep.h0", RmwSpec("sweep"), &handle, &pattern).ok());
      for (int i = 0; i < kKeysPerBatch; ++i) {
        ASSERT_TRUE(client->RmwPut(handle, key(2, i), w, "v2").ok());
      }
      ASSERT_TRUE(client->Flush().ok());
      client.reset();
      fs_->ResetTracking();
      fs_->CrashAtSyncPoint(crash_point);
      second_drain_ok = server->DrainAndStop().ok();
    }
    const bool crashed = fs_->crashed();
    if (crashed) {
      ASSERT_TRUE(fs_->RestoreCrashImage().ok());
    } else {
      fs_->ResetTracking();
    }

    // Restart on the crash image: the server must come back, with batch 1
    // always present and batch 2 present iff its drain was acknowledged.
    {
      std::unique_ptr<net::Server> server;
      const Status restarted = net::Server::Start(options, &server);
      ASSERT_TRUE(restarted.ok())
          << "crash point " << crash_point << ": " << restarted.ToString();
      net::ClientOptions copts;
      copts.port = server->port();
      std::unique_ptr<net::Client> client;
      ASSERT_TRUE(net::Client::Connect(copts, &client).ok());
      uint64_t handle = 0;
      StorePattern pattern;
      ASSERT_TRUE(client->OpenStore("sweep.h0", RmwSpec("sweep"), &handle, &pattern).ok());
      std::string value;
      for (int i = 0; i < kKeysPerBatch; ++i) {
        ASSERT_TRUE(client->RmwGet(handle, key(1, i), w, &value).ok())
            << "crash point " << crash_point << " lost committed key " << key(1, i);
        EXPECT_EQ(value, "v1");
      }
      if (second_drain_ok) {
        for (int i = 0; i < kKeysPerBatch; ++i) {
          ASSERT_TRUE(client->RmwGet(handle, key(2, i), w, &value).ok())
              << "crash point " << crash_point << " lost acked drain key " << key(2, i);
          EXPECT_EQ(value, "v2");
        }
      }
      client.reset();
      server->Stop();
    }

    if (!crashed) {
      break;  // the armed point was past the drain's last sync: sweep done
    }
  }
}

}  // namespace
}  // namespace flowkv
