// Unit tests for the LSM substrate: memtable semantics, SSTable round trips,
// store-level Get/Put/Merge/Delete, scans, compaction, reopen recovery.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/coding.h"
#include "src/common/env.h"
#include "src/lsm/bloom.h"
#include "src/lsm/lsm_store.h"
#include "src/lsm/memtable.h"
#include "src/lsm/merge.h"
#include "src/lsm/sstable.h"

namespace flowkv {
namespace {

class LsmTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("lsm_test"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }

  std::unique_ptr<LsmStore> OpenStore(LsmOptions options = {}) {
    std::unique_ptr<LsmStore> store;
    Status s = LsmStore::Open(dir_, options, std::make_unique<ListAppendMergeOperator>(),
                              &store);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return store;
  }

  static std::string Element(const std::string& v) {
    std::string e;
    EncodeListElement(&e, v);
    return e;
  }

  std::string dir_;
};

TEST_F(LsmTest, MemTablePutGetDelete) {
  MemTable mt;
  mt.Put("k1", "v1");
  LsmEntry entry;
  ASSERT_TRUE(mt.Get("k1", &entry));
  EXPECT_EQ(entry.base, BaseState::kValue);
  EXPECT_EQ(entry.base_value, "v1");
  mt.Delete("k1");
  ASSERT_TRUE(mt.Get("k1", &entry));
  EXPECT_EQ(entry.base, BaseState::kDeleted);
  EXPECT_FALSE(mt.Get("absent", &entry));
}

TEST_F(LsmTest, MemTableMergeAccumulatesInOrder) {
  MemTable mt;
  mt.Merge("k", "a");
  mt.Merge("k", "b");
  mt.Merge("k", "c");
  LsmEntry entry;
  ASSERT_TRUE(mt.Get("k", &entry));
  EXPECT_EQ(entry.base, BaseState::kNone);
  ASSERT_EQ(entry.operands.size(), 3u);
  EXPECT_EQ(entry.operands[0], "a");
  EXPECT_EQ(entry.operands[2], "c");
}

TEST_F(LsmTest, MemTablePutClearsOperands) {
  MemTable mt;
  mt.Merge("k", "a");
  mt.Put("k", "base");
  mt.Merge("k", "b");
  LsmEntry entry;
  ASSERT_TRUE(mt.Get("k", &entry));
  EXPECT_EQ(entry.base_value, "base");
  ASSERT_EQ(entry.operands.size(), 1u);
  EXPECT_EQ(entry.operands[0], "b");
}

TEST_F(LsmTest, MemTableTracksMemory) {
  MemTable mt;
  size_t before = mt.ApproximateMemoryUsage();
  for (int i = 0; i < 100; ++i) {
    mt.Put("key" + std::to_string(i), std::string(100, 'v'));
  }
  EXPECT_GT(mt.ApproximateMemoryUsage(), before + 100 * 100);
}

TEST_F(LsmTest, BloomFilterNoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 1000; ++i) {
    builder.AddKey("member" + std::to_string(i));
  }
  BloomFilter filter(builder.Finish());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(filter.MayContain("member" + std::to_string(i))) << i;
  }
}

TEST_F(LsmTest, BloomFilterLowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 1000; ++i) {
    builder.AddKey("member" + std::to_string(i));
  }
  BloomFilter filter(builder.Finish());
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (filter.MayContain("absent" + std::to_string(i))) {
      ++false_positives;
    }
  }
  // ~1% expected at 10 bits/key; allow generous slack.
  EXPECT_LT(false_positives, 400);
}

TEST_F(LsmTest, BloomFilterEmptyAndMalformedAreConservative) {
  BloomFilterBuilder builder;
  BloomFilter empty(builder.Finish());
  EXPECT_TRUE(empty.MayContain("anything") || true);  // must not crash
  BloomFilter malformed("x");
  EXPECT_TRUE(malformed.MayContain("anything"));  // conservative on junk
}

TEST_F(LsmTest, SstableBloomShortCircuitsAbsentKeys) {
  const std::string path = JoinPath(dir_, "bloom.sst");
  SstWriter writer(path, 4096);
  LsmEntry entry;
  entry.base = BaseState::kValue;
  entry.base_value = "v";
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%05d", i);
    ASSERT_TRUE(writer.Add(key, entry).ok());
  }
  ASSERT_TRUE(writer.Finish(false).ok());
  IoStats stats;
  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(SstReader::Open(path, nullptr, &reader, &stats).ok());
  const int64_t bytes_after_open = stats.bytes_read;
  // Absent keys inside the key range: nearly all rejected without any block
  // read thanks to the bloom filter.
  LsmEntry out;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(reader->Get("key" + std::to_string(10000 + i), &out).IsNotFound());
  }
  EXPECT_LT(stats.bytes_read - bytes_after_open, 16 * 1024);  // <1 block per ~100 probes
}

TEST_F(LsmTest, SstableWriteReadRoundTrip) {
  const std::string path = JoinPath(dir_, "t.sst");
  SstWriter writer(path, /*block_bytes=*/256);
  for (int i = 0; i < 500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%05d", i);
    LsmEntry entry;
    entry.base = BaseState::kValue;
    entry.base_value = "value" + std::to_string(i);
    ASSERT_TRUE(writer.Add(key, entry).ok());
  }
  ASSERT_TRUE(writer.Finish(false).ok());
  EXPECT_EQ(writer.entry_count(), 500u);

  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(SstReader::Open(path, nullptr, &reader).ok());
  EXPECT_EQ(reader->smallest_key(), "key00000");
  EXPECT_EQ(reader->largest_key(), "key00499");
  LsmEntry entry;
  ASSERT_TRUE(reader->Get("key00123", &entry).ok());
  EXPECT_EQ(entry.base_value, "value123");
  EXPECT_TRUE(reader->Get("key99999", &entry).IsNotFound());
  EXPECT_TRUE(reader->Get("a", &entry).IsNotFound());
}

TEST_F(LsmTest, SstableRejectsOutOfOrderKeys) {
  SstWriter writer(JoinPath(dir_, "bad.sst"), 4096);
  LsmEntry entry;
  entry.base = BaseState::kValue;
  ASSERT_TRUE(writer.Add("b", entry).ok());
  EXPECT_FALSE(writer.Add("a", entry).ok());
  EXPECT_FALSE(writer.Add("b", entry).ok());
}

TEST_F(LsmTest, SstableIteratorFullScanAndSeek) {
  const std::string path = JoinPath(dir_, "it.sst");
  SstWriter writer(path, 128);
  for (int i = 0; i < 200; i += 2) {  // even keys only
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    LsmEntry entry;
    entry.base = BaseState::kValue;
    entry.base_value = std::to_string(i);
    ASSERT_TRUE(writer.Add(key, entry).ok());
  }
  ASSERT_TRUE(writer.Finish(false).ok());
  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(SstReader::Open(path, nullptr, &reader).ok());

  auto it = reader->NewIterator();
  it->SeekToFirst();
  int count = 0;
  std::string prev;
  while (it->Valid()) {
    EXPECT_GT(it->key().ToString(), prev);
    prev = it->key().ToString();
    ++count;
    it->Next();
  }
  EXPECT_EQ(count, 100);

  it->Seek("k0100");  // exists
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "k0100");
  it->Seek("k0101");  // between keys -> next even
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "k0102");
  it->Seek("k9999");
  EXPECT_FALSE(it->Valid());
}

TEST_F(LsmTest, SstableDetectsCorruption) {
  const std::string path = JoinPath(dir_, "c.sst");
  SstWriter writer(path, 4096);
  LsmEntry entry;
  entry.base = BaseState::kValue;
  entry.base_value = std::string(100, 'v');
  ASSERT_TRUE(writer.Add("key", entry).ok());
  ASSERT_TRUE(writer.Finish(false).ok());
  // Flip a byte in the data block region.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  contents[10] ^= 0xff;
  ASSERT_TRUE(WriteStringToFile(path, contents).ok());
  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(SstReader::Open(path, nullptr, &reader).ok());  // index still fine
  LsmEntry out;
  EXPECT_TRUE(reader->Get("key", &out).IsCorruption());
}

TEST_F(LsmTest, StorePutGetDelete) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(store->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE(store->Delete("k").ok());
  EXPECT_TRUE(store->Get("k", &value).IsNotFound());
}

TEST_F(LsmTest, StoreMergeAcrossFlushes) {
  LsmOptions options;
  options.write_buffer_bytes = 4 * 1024;  // force frequent flushes
  options.compaction_trigger = 1000;      // but no compaction
  auto store = OpenStore(options);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(store->Merge("list", Element("v" + std::to_string(i))).ok());
    ASSERT_TRUE(store->Put("filler" + std::to_string(i), std::string(64, 'x')).ok());
  }
  EXPECT_GT(store->table_count(), 1u);
  std::string merged;
  ASSERT_TRUE(store->Get("list", &merged).ok());
  std::vector<std::string> elements;
  ASSERT_TRUE(DecodeListElements(merged, &elements));
  ASSERT_EQ(elements.size(), 300u);
  EXPECT_EQ(elements[0], "v0");
  EXPECT_EQ(elements[299], "v299");
}

TEST_F(LsmTest, CompactionFoldsOperandsAndDropsTombstones) {
  LsmOptions options;
  options.write_buffer_bytes = 2 * 1024;
  options.compaction_trigger = 1000;
  auto store = OpenStore(options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Merge("list", Element("e" + std::to_string(i))).ok());
    ASSERT_TRUE(store->Put("dead" + std::to_string(i), std::string(64, 'd')).ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Delete("dead" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  uint64_t before = store->ApproximateDiskBytes();
  ASSERT_TRUE(store->CompactAll().ok());
  EXPECT_EQ(store->table_count(), 1u);
  EXPECT_LT(store->ApproximateDiskBytes(), before);
  // Merged list survives compaction intact.
  std::string merged;
  ASSERT_TRUE(store->Get("list", &merged).ok());
  std::vector<std::string> elements;
  ASSERT_TRUE(DecodeListElements(merged, &elements));
  EXPECT_EQ(elements.size(), 100u);
  // Tombstoned keys are gone.
  std::string value;
  EXPECT_TRUE(store->Get("dead50", &value).IsNotFound());
  EXPECT_GT(store->stats().compactions, 0);
}

TEST_F(LsmTest, AutomaticCompactionTriggers) {
  LsmOptions options;
  options.write_buffer_bytes = 1024;
  options.compaction_trigger = 4;
  auto store = OpenStore(options);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i % 50), std::string(64, 'v')).ok());
  }
  EXPECT_GT(store->stats().compactions, 0);
  EXPECT_LT(static_cast<int>(store->table_count()), options.compaction_trigger);
  std::string value;
  ASSERT_TRUE(store->Get("key7", &value).ok());
}

TEST_F(LsmTest, ScanMergesLevelsInKeyOrder) {
  LsmOptions options;
  options.write_buffer_bytes = 1024;
  options.compaction_trigger = 1000;
  auto store = OpenStore(options);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 200; ++i) {
    std::string key = "k" + std::to_string(i % 37);
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(store->Put(key, value).ok());
    expected[key] = value;
  }
  std::vector<std::pair<std::string, std::string>> scanned;
  ASSERT_TRUE(store->Scan("", "", [&](const Slice& k, const Slice& v) {
    scanned.emplace_back(k.ToString(), v.ToString());
  }).ok());
  ASSERT_EQ(scanned.size(), expected.size());
  auto exp_it = expected.begin();
  for (const auto& [k, v] : scanned) {
    EXPECT_EQ(k, exp_it->first);
    EXPECT_EQ(v, exp_it->second);
    ++exp_it;
  }
}

TEST_F(LsmTest, ScanRangeBoundsRespected) {
  auto store = OpenStore();
  for (char c = 'a'; c <= 'z'; ++c) {
    ASSERT_TRUE(store->Put(std::string(1, c), "v").ok());
  }
  std::vector<std::string> keys;
  ASSERT_TRUE(store->Scan("f", "k", [&](const Slice& k, const Slice&) {
    keys.push_back(k.ToString());
  }).ok());
  ASSERT_EQ(keys.size(), 5u);
  EXPECT_EQ(keys.front(), "f");
  EXPECT_EQ(keys.back(), "j");
}

TEST_F(LsmTest, ScanPrefixAndDeleteRange) {
  auto store = OpenStore();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store->Put("win1/key" + std::to_string(i), "a").ok());
    ASSERT_TRUE(store->Put("win2/key" + std::to_string(i), "b").ok());
  }
  int count = 0;
  ASSERT_TRUE(store->ScanPrefix("win1/", [&](const Slice&, const Slice&) { ++count; }).ok());
  EXPECT_EQ(count, 10);
  ASSERT_TRUE(store->DeleteRange("win1/", "win1/z").ok());
  count = 0;
  ASSERT_TRUE(store->ScanPrefix("win1/", [&](const Slice&, const Slice&) { ++count; }).ok());
  EXPECT_EQ(count, 0);
  count = 0;
  ASSERT_TRUE(store->ScanPrefix("win2/", [&](const Slice&, const Slice&) { ++count; }).ok());
  EXPECT_EQ(count, 10);
}

TEST_F(LsmTest, ReopenRecoversFlushedState) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->Put("persisted", "yes").ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = OpenStore();
  std::string value;
  ASSERT_TRUE(store->Get("persisted", &value).ok());
  EXPECT_EQ(value, "yes");
}

TEST_F(LsmTest, BlockCacheServesRepeatedReads) {
  LsmOptions options;
  options.block_cache_bytes = 1 << 20;
  auto store = OpenStore(options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i), std::string(200, 'v')).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  std::string value;
  ASSERT_TRUE(store->Get("key50", &value).ok());
  const int64_t bytes_after_first = store->stats().io.bytes_read;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store->Get("key50", &value).ok());
  }
  EXPECT_EQ(store->stats().io.bytes_read, bytes_after_first);  // all cache hits
}

TEST_F(LsmTest, StatsAccounting) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("a", "1").ok());
  ASSERT_TRUE(store->Merge("a", Element("2")).ok());
  std::string value;
  ASSERT_TRUE(store->Get("a", &value).ok());
  const StoreStats& stats = store->stats();
  EXPECT_EQ(stats.writes, 2);
  EXPECT_EQ(stats.reads, 1);
  EXPECT_GT(stats.write_nanos, 0);
  EXPECT_GT(stats.read_nanos, 0);
}

}  // namespace
}  // namespace flowkv
