// Unit tests for the foundation library: coding, hashing, slices, status,
// filesystem env, file wrappers, histogram, LRU cache, arena, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/arena.h"
#include "src/common/coding.h"
#include "src/common/env.h"
#include "src/common/file.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/common/lru_cache.h"
#include "src/common/random.h"
#include "src/common/slice.h"
#include "src/common/stats.h"
#include "src/common/status.h"

namespace flowkv {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, NetworkCodes) {
  Status timeout = Status::TimedOut("deadline exceeded");
  EXPECT_FALSE(timeout.ok());
  EXPECT_TRUE(timeout.IsTimedOut());
  EXPECT_FALSE(timeout.IsIOError());  // distinct code so callers can branch
  EXPECT_EQ(timeout.ToString(), "TimedOut: deadline exceeded");

  Status reset = Status::ConnectionReset("peer went away");
  EXPECT_FALSE(reset.ok());
  EXPECT_TRUE(reset.IsConnectionReset());
  EXPECT_FALSE(reset.IsTimedOut());
  EXPECT_EQ(reset.ToString(), "ConnectionReset: peer went away");

  EXPECT_STREQ(StatusCodeName(StatusCode::kTimedOut), "TimedOut");
  EXPECT_STREQ(StatusCodeName(StatusCode::kConnectionReset), "ConnectionReset");
}

TEST(StatusTest, FromCodeRoundTrip) {
  // Every factory-producible status survives a (code, message) round trip —
  // the wire representation used by src/net responses.
  const Status samples[] = {
      Status::Ok(),           Status::NotFound("a"),        Status::InvalidArgument("b"),
      Status::IOError("c"),   Status::Corruption("d"),      Status::ResourceExhausted("e"),
      Status::FailedPrecondition("f"), Status::Unimplemented("g"), Status::Internal("h"),
      Status::TimedOut("i"),  Status::ConnectionReset("j"),
  };
  for (const Status& s : samples) {
    const Status back = Status::FromCode(static_cast<uint8_t>(s.code()), s.message());
    EXPECT_EQ(back.code(), s.code());
    EXPECT_EQ(back.message(), s.message());
  }
  // Unknown codes map to kInternal, never to success.
  EXPECT_EQ(Status::FromCode(250, "future code").code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = [] { return Status::InvalidArgument("bad"); };
  auto wrapper = [&]() -> Status {
    FLOWKV_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInvalidArgument);
}

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_TRUE(s.StartsWith("he"));
  EXPECT_FALSE(s.StartsWith("eh"));
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("abc").Compare("abd"), 0);
  EXPECT_GT(Slice("abd").Compare("abc"), 0);
  EXPECT_EQ(Slice("abc").Compare("abc"), 0);
  EXPECT_LT(Slice("ab").Compare("abc"), 0);  // prefix orders first
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Slice input(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&input, &v32));
  ASSERT_TRUE(GetFixed64(&input, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> cases = {0, 1, 127, 128, 16383, 16384, (1ULL << 32) - 1, 1ULL << 32,
                                 UINT64_MAX};
  std::string buf;
  for (uint64_t v : cases) {
    PutVarint64(&buf, v);
  }
  Slice input(buf);
  for (uint64_t expected : cases) {
    uint64_t v;
    ASSERT_TRUE(GetVarint64(&input, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : std::vector<uint64_t>{0, 127, 128, 1ULL << 42, UINT64_MAX}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, UINT64_MAX);
  buf.pop_back();
  Slice input(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&input, &v));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "alpha");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'z'));
  Slice input(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&input, &a));
  ASSERT_TRUE(GetLengthPrefixed(&input, &b));
  ASSERT_TRUE(GetLengthPrefixed(&input, &c));
  EXPECT_EQ(a.ToString(), "alpha");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
}

TEST(CodingTest, SignedZigzag) {
  for (int64_t v : std::vector<int64_t>{0, 1, -1, 123456789, -123456789, INT64_MAX,
                                        INT64_MIN}) {
    std::string buf;
    PutVarsigned64(&buf, v);
    Slice input(buf);
    int64_t decoded;
    ASSERT_TRUE(GetVarsigned64(&input, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(Hash64("abc", 3), Hash64("abc", 3));
  EXPECT_NE(Hash64("abc", 3), Hash64("abd", 3));
  EXPECT_NE(Hash64("abc", 3), Hash64("abc", 3, /*seed=*/99));
  // Buckets of sequential keys should spread widely.
  std::set<uint64_t> buckets;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "key" + std::to_string(i);
    buckets.insert(Hash64(key.data(), key.size()) % 64);
  }
  EXPECT_EQ(buckets.size(), 64u);
}

TEST(HashTest, ChecksumDetectsFlips) {
  std::string data(100, 'a');
  uint32_t base = Checksum32(data.data(), data.size());
  data[50] = 'b';
  EXPECT_NE(base, Checksum32(data.data(), data.size()));
}

TEST(HashTest, StreamingChecksumMatchesOneShotUnderAnyChunking) {
  // The word-at-a-time checksum must be chunking-invariant: Update() calls
  // split at arbitrary (including mid-word and zero-length) boundaries have
  // to reproduce the one-shot value exactly.
  std::string data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<char>(i * 31 + 7));
  for (size_t len : {0ul, 1ul, 7ul, 8ul, 9ul, 63ul, 64ul, 65ul, 300ul}) {
    const uint32_t oneshot = Checksum32(data.data(), len);
    for (size_t chunk : {1ul, 3ul, 7ul, 8ul, 13ul, 64ul}) {
      StreamingChecksum32 crc;
      for (size_t off = 0; off < len; off += chunk) {
        crc.Update(data.data() + off, std::min(chunk, len - off));
      }
      crc.Update(data.data(), 0);  // zero-length update is a no-op
      EXPECT_EQ(oneshot, crc.Finish()) << "len=" << len << " chunk=" << chunk;
    }
    StreamingChecksum32 whole;
    whole.Update(data.data(), len);
    EXPECT_EQ(oneshot, whole.Finish()) << "len=" << len;
  }
}

TEST(EnvTest, CreateListRemove) {
  std::string dir = MakeTempDir("env_test");
  EXPECT_TRUE(FileExists(dir));
  ASSERT_TRUE(CreateDirs(JoinPath(dir, "a/b/c")).ok());
  ASSERT_TRUE(WriteStringToFile(JoinPath(dir, "a/file.txt"), "hi").ok());
  std::vector<std::string> names;
  ASSERT_TRUE(ListDir(JoinPath(dir, "a"), &names).ok());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names.size(), 2u);
  uint64_t size;
  ASSERT_TRUE(GetFileSize(JoinPath(dir, "a/file.txt"), &size).ok());
  EXPECT_EQ(size, 2u);
  ASSERT_TRUE(RemoveDirRecursively(dir).ok());
  EXPECT_FALSE(FileExists(dir));
}

TEST(FileTest, AppendAndReadBack) {
  std::string dir = MakeTempDir("file_test");
  std::string path = JoinPath(dir, "log");
  IoStats stats;
  std::unique_ptr<AppendFile> out;
  ASSERT_TRUE(AppendFile::Open(path, false, &out, &stats).ok());
  ASSERT_TRUE(out->Append("hello ").ok());
  ASSERT_TRUE(out->Append("world").ok());
  EXPECT_EQ(out->size(), 11u);
  ASSERT_TRUE(out->Sync().ok());
  ASSERT_TRUE(out->Close().ok());
  EXPECT_GT(stats.bytes_written, 0);

  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "hello world");

  std::unique_ptr<RandomAccessFile> in;
  ASSERT_TRUE(RandomAccessFile::Open(path, &in, &stats).ok());
  char scratch[16];
  Slice got;
  ASSERT_TRUE(in->Read(6, 5, &got, scratch).ok());
  EXPECT_EQ(got.ToString(), "world");
  EXPECT_FALSE(in->Read(8, 10, &got, scratch).ok());  // beyond EOF
  RemoveDirRecursively(dir).IgnoreError();
}

TEST(FileTest, ReopenAppends) {
  std::string dir = MakeTempDir("file_test");
  std::string path = JoinPath(dir, "log");
  {
    std::unique_ptr<AppendFile> out;
    ASSERT_TRUE(AppendFile::Open(path, false, &out).ok());
    ASSERT_TRUE(out->Append("abc").ok());
  }
  {
    std::unique_ptr<AppendFile> out;
    ASSERT_TRUE(AppendFile::Open(path, /*reopen=*/true, &out).ok());
    EXPECT_EQ(out->size(), 3u);
    ASSERT_TRUE(out->Append("def").ok());
  }
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "abcdef");
  RemoveDirRecursively(dir).IgnoreError();
}

TEST(FileTest, LargeWritesBypassBuffer) {
  std::string dir = MakeTempDir("file_test");
  std::string path = JoinPath(dir, "log");
  std::unique_ptr<AppendFile> out;
  ASSERT_TRUE(AppendFile::Open(path, false, &out).ok());
  std::string big(300 * 1024, 'x');
  ASSERT_TRUE(out->Append("pre").ok());
  ASSERT_TRUE(out->Append(big).ok());
  ASSERT_TRUE(out->Append("post").ok());
  ASSERT_TRUE(out->Close().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents.size(), big.size() + 7);
  EXPECT_EQ(contents.substr(0, 3), "pre");
  EXPECT_EQ(contents.substr(contents.size() - 4), "post");
  RemoveDirRecursively(dir).IgnoreError();
}

TEST(FileTest, ZeroCopyTransferMovesRange) {
  std::string dir = MakeTempDir("file_test");
  std::string src = JoinPath(dir, "src");
  std::string dst_path = JoinPath(dir, "dst");
  ASSERT_TRUE(WriteStringToFile(src, "0123456789abcdef").ok());
  std::unique_ptr<AppendFile> dst;
  ASSERT_TRUE(AppendFile::Open(dst_path, false, &dst).ok());
  ASSERT_TRUE(dst->Append("HEAD:").ok());
  ASSERT_TRUE(ZeroCopyTransfer(src, 4, 8, dst.get()).ok());
  EXPECT_EQ(dst->size(), 13u);  // logical size stays accurate
  ASSERT_TRUE(dst->Close().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(dst_path, &contents).ok());
  EXPECT_EQ(contents, "HEAD:456789ab");
  RemoveDirRecursively(dir).IgnoreError();
}

TEST(FileTest, ZeroCopyTransferRejectsBeyondEof) {
  std::string dir = MakeTempDir("file_test");
  std::string src = JoinPath(dir, "src");
  ASSERT_TRUE(WriteStringToFile(src, "short").ok());
  std::unique_ptr<AppendFile> dst;
  ASSERT_TRUE(AppendFile::Open(JoinPath(dir, "dst"), false, &dst).ok());
  EXPECT_FALSE(ZeroCopyTransfer(src, 2, 100, dst.get()).ok());
  RemoveDirRecursively(dir).IgnoreError();
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Add(i);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 1.0);
  EXPECT_NEAR(h.Percentile(50), 500, 30);
  EXPECT_NEAR(h.Percentile(95), 950, 60);
  EXPECT_LE(h.Percentile(50), h.Percentile(95));
  EXPECT_LE(h.Percentile(95), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.max());
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) {
    a.Add(10);
    b.Add(1000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_LT(a.Percentile(25), 100);
  EXPECT_GT(a.Percentile(75), 500);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Percentile(99), 0);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Mean(), 42);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  // Every percentile of a one-sample distribution is that sample (the
  // interpolated value is clamped into [min, max]).
  EXPECT_EQ(h.Percentile(1), 42);
  EXPECT_EQ(h.Percentile(50), 42);
  EXPECT_EQ(h.Percentile(99.9), 42);
}

TEST(HistogramTest, MergeDisjointRanges) {
  Histogram low, high;
  for (int i = 1; i <= 100; ++i) {
    low.Add(i);          // [1, 100]
    high.Add(10'000 + i);  // [10001, 10100]
  }
  low.Merge(high);
  EXPECT_EQ(low.count(), 200u);
  EXPECT_EQ(low.min(), 1);
  EXPECT_EQ(low.max(), 10'100);
  EXPECT_NEAR(low.Mean(), (5050.0 + 1'005'050.0) / 200.0, 1.0);
  // The merged distribution is bimodal: p25 lands in the low range, p75 in
  // the high range, and nothing lives in between.
  EXPECT_LT(low.Percentile(25), 200);
  EXPECT_GT(low.Percentile(75), 9'000);
}

TEST(HistogramTest, ValuesBeyondLastBucketLandInOverflowBucket) {
  Histogram h;
  h.Add(1e15);  // beyond the last finite limit (~1e13)
  h.Add(2e15);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 2e15);
  // The overflow bucket's right edge is max_, so percentiles stay finite
  // and within the observed range.
  const double p99 = h.Percentile(99);
  EXPECT_TRUE(std::isfinite(p99));
  EXPECT_GE(p99, h.min());
  EXPECT_LE(p99, h.max());
}

TEST(StoreStatsTest, MergeFromCoversEveryCounterField) {
  // Give every counter in `other` a distinct nonzero value via the same
  // visitor table MergeFrom is built on, then verify the merge carried each
  // one. Combined with the sizeof static_assert in stats.cc, this fails if a
  // field is ever added without being wired into CounterFields().
  StoreStats other;
  size_t n = 0;
  const StoreStats::CounterField* fields = StoreStats::CounterFields(&n);
  ASSERT_GT(n, 0u);
  for (size_t i = 0; i < n; ++i) {
    fields[i].get(other) = static_cast<int64_t>(i + 1);
  }
  other.ett_abs_error_ms.Add(7);

  StoreStats merged;
  for (size_t i = 0; i < n; ++i) {
    fields[i].get(merged) = 100;  // pre-existing totals must be preserved
  }
  merged.MergeFrom(other);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(fields[i].get(merged).load(), 100 + static_cast<int64_t>(i + 1))
        << "counter '" << fields[i].name << "' not merged";
  }
  EXPECT_EQ(merged.ett_abs_error_ms.count(), 1u);

  // Every counter also appears by name in the JSON export.
  const std::string json = other.ToJson();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NE(json.find(std::string("\"") + fields[i].name + "\":"), std::string::npos)
        << "counter '" << fields[i].name << "' missing from ToJson";
  }
}

TEST(LoggingTest, SetLogLevelRoundTrip) {
  const LogLevel original = CurrentLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(CurrentLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(CurrentLogLevel(), LogLevel::kError);
  SetLogLevel(original);
  EXPECT_EQ(CurrentLogLevel(), original);
}

TEST(LoggingTest, LogKvFormatsKeyValuePairs) {
  std::ostringstream os;
  os << LogKv("events", 42) << LogKv("query", "q7");
  EXPECT_EQ(os.str(), "events=42 query=q7 ");
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(3 * (1 + 1 + 64) + 10);  // fits ~3 single-char entries
  auto value = [](const char* s) { return std::make_shared<const std::string>(s); };
  cache.Insert("a", value("1"));
  cache.Insert("b", value("2"));
  cache.Insert("c", value("3"));
  ASSERT_NE(cache.Lookup("a"), nullptr);  // promote a
  cache.Insert("d", value("4"));          // evicts b
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("d"), nullptr);
}

TEST(LruCacheTest, EraseAndUsage) {
  LruCache cache(10000);
  cache.Insert("k", std::make_shared<const std::string>("vvvv"));
  EXPECT_GT(cache.usage(), 0u);
  cache.Erase("k");
  EXPECT_EQ(cache.usage(), 0u);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
}

TEST(ShardedLruCacheTest, BasicRoundTrip) {
  ShardedLruCache cache(1 << 20);
  cache.Insert("key1", std::make_shared<const std::string>("value1"));
  auto got = cache.Lookup("key1");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "value1");
  cache.Erase("key1");
  EXPECT_EQ(cache.Lookup("key1"), nullptr);
}

TEST(ArenaTest, AllocationsAreDistinctAndUsable) {
  Arena arena;
  char* a = arena.Allocate(100);
  char* b = arena.Allocate(100);
  EXPECT_NE(a, b);
  std::memset(a, 1, 100);
  std::memset(b, 2, 100);
  EXPECT_EQ(a[99], 1);
  EXPECT_EQ(b[0], 2);
  char* big = arena.Allocate(1 << 20);
  std::memset(big, 3, 1 << 20);
  EXPECT_GE(arena.MemoryUsage(), (1u << 20) + 200);
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Uniform(10);
    EXPECT_LT(v, 10u);
    int64_t x = r.Range(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ZipfIsSkewed) {
  ZipfGenerator zipf(1000, 0.9, 3);
  int head = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = zipf.Next();
    EXPECT_LT(v, 1000u);
    if (v < 10) {
      ++head;
    }
  }
  // Top-1% of keys should draw far more than 1% of samples.
  EXPECT_GT(head, 1500);
}

}  // namespace
}  // namespace flowkv
