// AAR store tests (paper §4.1): window-boundary hashing, per-window log
// files, gradual key-complete chunked reads, fetch-and-remove cleanup.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/flowkv/aar_store.h"

namespace flowkv {
namespace {

class AarStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("aar_test"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }

  std::unique_ptr<AarStore> OpenStore(FlowKvOptions options = {}) {
    std::unique_ptr<AarStore> store;
    Status s = AarStore::Open(dir_, options, &store);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return store;
  }

  // Drains a window fully, grouping results per key.
  static std::map<std::string, std::vector<std::string>> Drain(AarStore* store,
                                                               const Window& w) {
    std::map<std::string, std::vector<std::string>> result;
    while (true) {
      std::vector<WindowChunkEntry> chunk;
      bool done = false;
      Status s = store->GetWindowChunk(w, &chunk, &done);
      EXPECT_TRUE(s.ok()) << s.ToString();
      if (done) {
        return result;
      }
      for (auto& entry : chunk) {
        EXPECT_EQ(result.count(entry.key), 0u) << "key split across chunks: " << entry.key;
        result[entry.key] = std::move(entry.values);
      }
    }
  }

  std::string dir_;
};

TEST_F(AarStoreTest, AppendAndDrainFromMemory) {
  auto store = OpenStore();
  Window w(0, 100);
  ASSERT_TRUE(store->Append("a", "1", w).ok());
  ASSERT_TRUE(store->Append("b", "2", w).ok());
  ASSERT_TRUE(store->Append("a", "3", w).ok());
  auto result = Drain(store.get(), w);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result["a"], (std::vector<std::string>{"1", "3"}));
  EXPECT_EQ(result["b"], (std::vector<std::string>{"2"}));
}

TEST_F(AarStoreTest, WindowsAreIsolated) {
  auto store = OpenStore();
  Window w1(0, 100), w2(100, 200);
  ASSERT_TRUE(store->Append("k", "in-w1", w1).ok());
  ASSERT_TRUE(store->Append("k", "in-w2", w2).ok());
  auto r1 = Drain(store.get(), w1);
  EXPECT_EQ(r1["k"], (std::vector<std::string>{"in-w1"}));
  auto r2 = Drain(store.get(), w2);
  EXPECT_EQ(r2["k"], (std::vector<std::string>{"in-w2"}));
}

TEST_F(AarStoreTest, FetchAndRemoveSemantics) {
  auto store = OpenStore();
  Window w(0, 100);
  ASSERT_TRUE(store->Append("k", "v", w).ok());
  Drain(store.get(), w);
  // Second drain finds nothing.
  auto again = Drain(store.get(), w);
  EXPECT_TRUE(again.empty());
}

TEST_F(AarStoreTest, FlushCreatesPerWindowLogFiles) {
  FlowKvOptions options;
  options.write_buffer_bytes = 1024;  // tiny buffer -> frequent flushes
  auto store = OpenStore(options);
  Window w1(0, 100), w2(100, 200);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Append("k" + std::to_string(i % 7), std::string(32, 'v'), w1).ok());
    ASSERT_TRUE(store->Append("k" + std::to_string(i % 7), std::string(32, 'w'), w2).ok());
  }
  std::vector<std::string> names;
  ASSERT_TRUE(ListDir(dir_, &names).ok());
  // One log file per window boundary, not per key.
  EXPECT_EQ(names.size(), 2u);
  EXPECT_GT(store->stats().flushes, 0);
}

TEST_F(AarStoreTest, LogFileDeletedAfterRead) {
  FlowKvOptions options;
  options.write_buffer_bytes = 256;
  auto store = OpenStore(options);
  Window w(0, 100);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Append("k", std::string(64, 'v'), w).ok());
  }
  std::vector<std::string> names;
  ASSERT_TRUE(ListDir(dir_, &names).ok());
  ASSERT_EQ(names.size(), 1u);
  Drain(store.get(), w);
  ASSERT_TRUE(ListDir(dir_, &names).ok());
  EXPECT_TRUE(names.empty());  // fetch-and-remove unlinked the log
  // And no compaction was ever needed.
  EXPECT_EQ(store->stats().compactions, 0);
}

TEST_F(AarStoreTest, MixedMemoryAndDiskData) {
  FlowKvOptions options;
  options.write_buffer_bytes = 512;
  auto store = OpenStore(options);
  Window w(0, 100);
  std::map<std::string, int> expected_counts;
  for (int i = 0; i < 200; ++i) {
    std::string key = "key" + std::to_string(i % 13);
    ASSERT_TRUE(store->Append(key, "v" + std::to_string(i), w).ok());
    expected_counts[key]++;
  }
  auto result = Drain(store.get(), w);
  ASSERT_EQ(result.size(), expected_counts.size());
  int total = 0;
  for (const auto& [key, values] : result) {
    EXPECT_EQ(static_cast<int>(values.size()), expected_counts[key]);
    total += static_cast<int>(values.size());
  }
  EXPECT_EQ(total, 200);
}

TEST_F(AarStoreTest, GradualLoadingSplitsLargeWindows) {
  FlowKvOptions options;
  options.write_buffer_bytes = 4 * 1024;
  options.read_chunk_bytes = 64 * 1024;  // clamp floor in StartRead
  auto store = OpenStore(options);
  Window w(0, 100);
  // ~1.3 MB of data -> multiple passes at the 64 KiB floor... the pass count
  // is capped; what matters is key-completeness and no data loss.
  const int kKeys = 211;
  const int kPerKey = 32;
  for (int k = 0; k < kKeys; ++k) {
    for (int i = 0; i < kPerKey; ++i) {
      ASSERT_TRUE(store->Append("key" + std::to_string(k), std::string(180, 'v'), w).ok());
    }
  }
  int chunks = 0;
  std::map<std::string, size_t> seen;
  while (true) {
    std::vector<WindowChunkEntry> chunk;
    bool done = false;
    ASSERT_TRUE(store->GetWindowChunk(w, &chunk, &done).ok());
    if (done) {
      break;
    }
    ++chunks;
    for (const auto& entry : chunk) {
      EXPECT_EQ(seen.count(entry.key), 0u);
      seen[entry.key] = entry.values.size();
    }
  }
  EXPECT_GT(chunks, 1);  // gradual: more than one partition
  ASSERT_EQ(seen.size(), static_cast<size_t>(kKeys));
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, static_cast<size_t>(kPerKey));
  }
}

TEST_F(AarStoreTest, EmptyWindowDrainsImmediately) {
  auto store = OpenStore();
  std::vector<WindowChunkEntry> chunk;
  bool done = false;
  ASSERT_TRUE(store->GetWindowChunk(Window(0, 100), &chunk, &done).ok());
  EXPECT_TRUE(done);
  EXPECT_TRUE(chunk.empty());
}

TEST_F(AarStoreTest, StatsTrackWritesAndReads) {
  auto store = OpenStore();
  Window w(0, 100);
  ASSERT_TRUE(store->Append("k", "v", w).ok());
  Drain(store.get(), w);
  EXPECT_EQ(store->stats().writes, 1);
  EXPECT_GT(store->stats().reads, 0);
  EXPECT_GT(store->stats().write_nanos, 0);
}

}  // namespace
}  // namespace flowkv
