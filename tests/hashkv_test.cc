// Unit tests for the Faster-like hash-log store: hybrid log addressing,
// read/upsert/RMW/delete, in-place vs append updates, spill-to-disk reads,
// compaction, epoch manager.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/env.h"
#include "src/hashkv/epoch.h"
#include "src/hashkv/hashkv_store.h"
#include "src/hashkv/hybrid_log.h"

namespace flowkv {
namespace {

class HashKvTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("hashkv_test"); }
  void TearDown() override { RemoveDirRecursively(dir_).IgnoreError(); }

  std::unique_ptr<HashKvStore> OpenStore(HashKvOptions options = {}) {
    std::unique_ptr<HashKvStore> store;
    Status s = HashKvStore::Open(dir_, options, &store);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return store;
  }

  std::string dir_;
};

TEST_F(HashKvTest, HybridLogAppendRead) {
  HashKvOptions options;
  std::unique_ptr<HybridLog> log;
  ASSERT_TRUE(HybridLog::Open(JoinPath(dir_, "log"), options, &log).ok());
  uint64_t a1, a2;
  ASSERT_TRUE(log->Append("key1", "value1", false, 0, &a1).ok());
  ASSERT_TRUE(log->Append("key2", "value2", false, a1, &a2).ok());
  EXPECT_NE(a1, 0u);
  EXPECT_NE(a1, a2);

  LogRecordHeader h;
  std::string key, value;
  ASSERT_TRUE(log->ReadRecord(a2, &h, &key, &value).ok());
  EXPECT_EQ(key, "key2");
  EXPECT_EQ(value, "value2");
  EXPECT_EQ(h.prev_addr, a1);
  ASSERT_TRUE(log->ReadRecord(a1, &h, &key, &value).ok());
  EXPECT_EQ(value, "value1");
  EXPECT_EQ(h.prev_addr, 0u);
}

TEST_F(HashKvTest, HybridLogTombstone) {
  std::unique_ptr<HybridLog> log;
  ASSERT_TRUE(HybridLog::Open(JoinPath(dir_, "log"), HashKvOptions{}, &log).ok());
  uint64_t addr;
  ASSERT_TRUE(log->Append("key", "", true, 0, &addr).ok());
  LogRecordHeader h;
  std::string key, value;
  ASSERT_TRUE(log->ReadRecord(addr, &h, &key, &value).ok());
  EXPECT_TRUE(h.is_tombstone());
  EXPECT_TRUE(value.empty());
}

TEST_F(HashKvTest, HybridLogSpillsToDiskAndReadsBack) {
  HashKvOptions options;
  options.memory_bytes = 16 * 1024;
  options.page_bytes = 4 * 1024;
  std::unique_ptr<HybridLog> log;
  ASSERT_TRUE(HybridLog::Open(JoinPath(dir_, "log"), options, &log).ok());
  std::vector<uint64_t> addrs;
  const std::string value(500, 'v');
  for (int i = 0; i < 200; ++i) {
    uint64_t addr;
    ASSERT_TRUE(log->Append("key" + std::to_string(i), value, false, 0, &addr).ok());
    addrs.push_back(addr);
  }
  // Early records must now live on disk.
  EXPECT_FALSE(log->InMemory(addrs[0]));
  EXPECT_TRUE(log->InMemory(addrs.back()));
  LogRecordHeader h;
  std::string key, got;
  ASSERT_TRUE(log->ReadRecord(addrs[0], &h, &key, &got).ok());
  EXPECT_EQ(key, "key0");
  EXPECT_EQ(got, value);
}

TEST_F(HashKvTest, HybridLogInPlaceUpdateOnlyInMutableRegion) {
  HashKvOptions options;
  options.memory_bytes = 1 << 20;
  std::unique_ptr<HybridLog> log;
  ASSERT_TRUE(HybridLog::Open(JoinPath(dir_, "log"), options, &log).ok());
  uint64_t addr;
  ASSERT_TRUE(log->Append("key", "AAAA", false, 0, &addr).ok());
  ASSERT_TRUE(log->InMutableRegion(addr));
  ASSERT_TRUE(log->UpdateInPlace(addr, "BBBB").ok());
  LogRecordHeader h;
  std::string key, value;
  ASSERT_TRUE(log->ReadRecord(addr, &h, &key, &value).ok());
  EXPECT_EQ(value, "BBBB");
  // Oversized update must be rejected.
  EXPECT_FALSE(log->UpdateInPlace(addr, "CCCCC").ok());
}

TEST_F(HashKvTest, HybridLogRejectsBadAddresses) {
  std::unique_ptr<HybridLog> log;
  ASSERT_TRUE(HybridLog::Open(JoinPath(dir_, "log"), HashKvOptions{}, &log).ok());
  LogRecordHeader h;
  std::string key, value;
  EXPECT_FALSE(log->ReadRecord(0, &h, &key, &value).ok());     // null address
  EXPECT_FALSE(log->ReadRecord(1'000'000, &h, &key, &value).ok());  // beyond tail
}

TEST_F(HashKvTest, StoreReadUpsertDelete) {
  auto store = OpenStore();
  std::string value;
  EXPECT_TRUE(store->Read("missing", &value).IsNotFound());
  ASSERT_TRUE(store->Upsert("k", "v1").ok());
  ASSERT_TRUE(store->Read("k", &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(store->Upsert("k", "v2").ok());
  ASSERT_TRUE(store->Read("k", &value).ok());
  EXPECT_EQ(value, "v2");
  ASSERT_TRUE(store->Delete("k").ok());
  EXPECT_TRUE(store->Read("k", &value).IsNotFound());
}

TEST_F(HashKvTest, StoreManyKeysWithCollisions) {
  HashKvOptions options;
  options.index_buckets = 16;  // force long chains
  auto store = OpenStore(options);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store->Upsert("key" + std::to_string(i), "value" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 500; ++i) {
    std::string value;
    ASSERT_TRUE(store->Read("key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
}

TEST_F(HashKvTest, RmwCreatesAndUpdates) {
  auto store = OpenStore();
  auto increment = [](const std::string* existing) {
    uint64_t n = existing == nullptr ? 0 : std::stoull(*existing);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%08llu", static_cast<unsigned long long>(n + 1));
    return std::string(buf);
  };
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Rmw("counter", increment).ok());
  }
  std::string value;
  ASSERT_TRUE(store->Read("counter", &value).ok());
  EXPECT_EQ(std::stoull(value), 100u);
}

TEST_F(HashKvTest, AppendPatternAmplifiesWrites) {
  // The paper's point: list appends via RMW rewrite the whole value, so
  // written bytes grow quadratically with list length.
  auto store = OpenStore();
  auto append_one = [](const std::string* existing) {
    std::string updated = existing == nullptr ? "" : *existing;
    updated.append(100, 'x');
    return updated;
  };
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Rmw("list", append_one).ok());
  }
  std::string value;
  ASSERT_TRUE(store->Read("list", &value).ok());
  EXPECT_EQ(value.size(), 100u * 100);
  // Total log bytes reflect rewrite-on-append (≈ sum 1..100 * 100 bytes).
  EXPECT_GT(store->TotalLogBytes(), 100u * 100 * 30);
}

TEST_F(HashKvTest, CompactionReclaimsDeadVersions) {
  HashKvOptions options;
  options.compaction_min_bytes = 1;
  options.max_space_amplification = 1e9;  // manual compaction only
  auto store = OpenStore(options);
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 20; ++k) {
      // Growing sizes defeat in-place updates, so each round appends a new
      // version and the previous one becomes dead.
      ASSERT_TRUE(store->Upsert("key" + std::to_string(k),
                                std::string(200 + round * 10, 'a' + (round % 26))).ok());
    }
  }
  const uint64_t before = store->TotalLogBytes();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_LT(store->TotalLogBytes(), before);
  for (int k = 0; k < 20; ++k) {
    std::string value;
    ASSERT_TRUE(store->Read("key" + std::to_string(k), &value).ok());
    EXPECT_EQ(value, std::string(200 + 49 * 10, 'a' + (49 % 26)));
  }
}

TEST_F(HashKvTest, AutomaticCompactionKeepsAmplificationBounded) {
  HashKvOptions options;
  options.compaction_min_bytes = 64 * 1024;
  options.max_space_amplification = 3.0;
  options.memory_bytes = 1 << 20;
  auto store = OpenStore(options);
  for (int round = 0; round < 200; ++round) {
    for (int k = 0; k < 10; ++k) {
      // Varying sizes defeat in-place updates, forcing new versions.
      ASSERT_TRUE(store->Upsert("key" + std::to_string(k),
                                std::string(100 + (round % 7) * 40, 'v')).ok());
    }
  }
  EXPECT_GT(store->stats().compactions, 0);
  for (int k = 0; k < 10; ++k) {
    std::string value;
    ASSERT_TRUE(store->Read("key" + std::to_string(k), &value).ok());
  }
}

TEST_F(HashKvTest, EpochManagerSafety) {
  EpochManager epochs;
  epochs.Protect(0);
  uint64_t pinned = epochs.SafeEpoch();
  epochs.Bump();
  epochs.Bump();
  EXPECT_EQ(epochs.SafeEpoch(), pinned);  // slot 0 still pins
  epochs.Unprotect(0);
  EXPECT_GT(epochs.SafeEpoch(), pinned);
}

TEST_F(HashKvTest, EpochDrainRunsActionsOnceSafe) {
  EpochManager epochs;
  int ran = 0;
  epochs.Protect(1);
  epochs.BumpWithAction([&] { ++ran; });
  epochs.Drain();
  EXPECT_EQ(ran, 0);  // slot 1 still inside
  epochs.Unprotect(1);
  epochs.Bump();
  epochs.Drain();
  EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace flowkv
